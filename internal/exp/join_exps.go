package exp

import (
	"fmt"
	"math/rand"
	"time"

	"tablehound/internal/datagen"
	"tablehound/internal/embedding"
	"tablehound/internal/invindex"
	"tablehound/internal/join"
	"tablehound/internal/josie"
	"tablehound/internal/lshensemble"
	"tablehound/internal/metrics"
	"tablehound/internal/minhash"
	"tablehound/internal/table"
)

// E1LSHEnsemble reproduces the LSH Ensemble result (Zhu et al., VLDB
// 2016, Figs 5-7): containment search over domains with skewed
// cardinalities. Sweeping the partition count, recall of the true
// >=t containers stays high while the candidate set (and therefore
// precision) improves over the single-partition MinHash-LSH baseline.
func E1LSHEnsemble() Report {
	const (
		numHashes = 128
		numDoms   = 2000
		numQuery  = 12
		threshold = 0.7
	)
	rng := rand.New(rand.NewSource(101))
	hasher := minhash.NewHasher(numHashes, 42)

	// Skewed lake over a shared Zipf background vocabulary: domains
	// partially overlap each other and the queries, as real lake
	// columns do — without this every non-container is fully disjoint
	// and even untuned LSH looks perfect.
	zipf := rand.NewZipf(rng, 1.1, 1, 20000)
	bg := func() string { return fmt.Sprintf("bg%d", zipf.Uint64()) }
	type dom struct {
		key  string
		vals []string
	}
	doms := make([]dom, 0, numDoms)
	for i := 0; i < numDoms; i++ {
		size := 10 + int(1500*rng.ExpFloat64()/4)
		vals := make([]string, size)
		for j := range vals {
			if rng.Float64() < 0.7 {
				vals[j] = bg()
			} else {
				vals[j] = fmt.Sprintf("u%d_%d", i, j)
			}
		}
		doms = append(doms, dom{key: fmt.Sprintf("dom%04d", i), vals: vals})
	}
	// Queries mix unique and background values, with planted
	// containers at varying containment.
	queries := make([][]string, numQuery)
	for q := range queries {
		queries[q] = make([]string, 100)
		for j := range queries[q] {
			if j >= 60 {
				queries[q][j] = bg()
			} else {
				queries[q][j] = fmt.Sprintf("q%d_%d", q, j)
			}
		}
		for c, frac := range []float64{0.75, 0.85, 0.95} {
			size := 60 + rng.Intn(300)
			vals := append([]string{}, queries[q][:int(frac*100)]...)
			for j := 0; j < size; j++ {
				vals = append(vals, fmt.Sprintf("fill%d_%d_%d", q, c, j))
			}
			doms = append(doms, dom{key: fmt.Sprintf("hit%d_%d", q, c), vals: vals})
		}
	}
	// Exact ground truth per query.
	truth := make([]map[string]bool, numQuery)
	for q := range queries {
		truth[q] = make(map[string]bool)
		for _, dm := range doms {
			if minhash.ExactContainment(queries[q], dm.vals) >= threshold {
				truth[q][dm.key] = true
			}
		}
	}
	rep := Report{
		ID:     "E1",
		Title:  "LSH Ensemble: containment search under skewed cardinalities (t=0.7)",
		Header: []string{"partitions", "recall", "precision", "candidates", "query_ms"},
		Notes:  "recall stays high at every partition count; precision and candidate count improve sharply vs the 1-partition MinHash-LSH baseline",
	}
	for _, parts := range []int{1, 2, 4, 8, 16, 32} {
		ix := lshensemble.New(numHashes, parts)
		for _, dm := range doms {
			sig := hasher.Sign(dm.vals)
			if err := ix.Add(lshensemble.Domain{Key: dm.key, Size: len(dm.vals), Sig: sig}); err != nil {
				panic(err)
			}
		}
		if err := ix.Build(); err != nil {
			panic(err)
		}
		var recall, precision float64
		var cands int
		var elapsed time.Duration
		for q := range queries {
			sig := hasher.Sign(queries[q])
			var got []string
			elapsed += timeIt(func() {
				var err error
				got, err = ix.Query(sig, 100, threshold)
				if err != nil {
					panic(err)
				}
			})
			cands += len(got)
			tp := 0
			for _, k := range got {
				if truth[q][k] {
					tp++
				}
			}
			if len(truth[q]) > 0 {
				recall += float64(tp) / float64(len(truth[q]))
			}
			if len(got) > 0 {
				precision += float64(tp) / float64(len(got))
			}
		}
		n := float64(numQuery)
		rep.Rows = append(rep.Rows, []string{
			d(parts), f(recall / n), f(precision / n),
			d(cands / numQuery), ms(elapsed / numQuery),
		})
	}
	return rep
}

// E2Josie reproduces the JOSIE strategy comparison (Zhu et al.,
// SIGMOD 2019, Fig 9 shape): exact top-k overlap search cost for
// MergeList, ProbeSet, and the cost-based adaptive algorithm across
// k. All three return identical answers; adaptive tracks the cheaper
// of the two extremes.
func E2Josie() Report {
	const numSets = 20000
	rng := rand.New(rand.NewSource(202))
	zipf := rand.NewZipf(rng, 1.25, 1, 40000)
	b := invindex.NewBuilder()
	raw := make([][]string, numSets)
	for i := 0; i < numSets; i++ {
		size := 8 + rng.Intn(60)
		vs := make([]string, size)
		for j := range vs {
			vs[j] = fmt.Sprintf("tok%d", zipf.Uint64())
		}
		raw[i] = vs
		if err := b.Add(fmt.Sprintf("set%05d", i), vs); err != nil {
			panic(err)
		}
	}
	ix, err := b.Build()
	if err != nil {
		panic(err)
	}
	s := josie.NewSearcher(ix)
	queries := make([][]string, 20)
	for q := range queries {
		queries[q] = raw[rng.Intn(numSets)]
	}
	rep := Report{
		ID:     "E2",
		Title:  "JOSIE: exact top-k overlap search cost by strategy",
		Header: []string{"k", "algo", "cost", "postings", "probes", "query_ms"},
		Notes:  "all strategies exact; adaptive cost stays at or below the better of mergelist/probeset as k grows",
	}
	cm := josie.DefaultCost()
	for _, k := range []int{1, 5, 10, 25, 50} {
		for _, algo := range []josie.Algorithm{josie.MergeList, josie.ProbeSet, josie.Adaptive} {
			var cost float64
			var postings, probes int
			var elapsed time.Duration
			for _, q := range queries {
				var st josie.Stats
				elapsed += timeIt(func() {
					_, st = s.TopKStats(q, k, algo)
				})
				cost += cm.ReadPosting*float64(st.PostingsRead) +
					cm.ReadToken*float64(st.TokensRead) +
					cm.ProbeSeek*float64(st.SetsProbed)
				postings += st.PostingsRead
				probes += st.SetsProbed
			}
			n := float64(len(queries))
			rep.Rows = append(rep.Rows, []string{
				d(k), algo.String(), f(cost / n),
				d(postings / len(queries)), d(probes / len(queries)),
				ms(elapsed / time.Duration(len(queries))),
			})
		}
	}
	return rep
}

// E9QCR reproduces the sketch-based correlated-dataset search result
// (Santos et al., ICDE 2022, Fig 6 shape): QCR top-k finds the
// planted correlated columns with high precision at a fraction of the
// exact scan's time.
func E9QCR() Report {
	const (
		numCols    = 3000
		numPlanted = 15
		numKeys    = 400
	)
	rng := rand.New(rand.NewSource(909))
	keys, x, _ := datagen.CorrelatedSeries(numKeys, 0, rng)
	cb := join.NewCorrBuilder(128)
	truth := make(map[string]bool)
	for i := 0; i < numPlanted; i++ {
		y := make([]float64, numKeys)
		for j := range y {
			y[j] = 0.92*x[j] + rng.NormFloat64()*0.35
		}
		key := fmt.Sprintf("planted%02d.k|v", i)
		truth[key] = true
		if err := cb.Add(key, keys, y); err != nil {
			panic(err)
		}
	}
	for i := 0; i < numCols-numPlanted; i++ {
		y := make([]float64, numKeys)
		for j := range y {
			y[j] = rng.NormFloat64()
		}
		if err := cb.Add(fmt.Sprintf("rand%04d.k|v", i), keys, y); err != nil {
			panic(err)
		}
	}
	e, err := cb.Build()
	if err != nil {
		panic(err)
	}
	rep := Report{
		ID:     "E9",
		Title:  "QCR sketches: correlated-column search vs exact scan",
		Header: []string{"method", "k", "precision@k", "query_ms"},
		Notes:  "QCR precision tracks the exact scan at a fraction of its latency",
	}
	for _, k := range []int{5, 10, 15} {
		var sketchRes, bruteRes []join.CorrMatch
		tSketch := timeIt(func() { sketchRes = e.TopK(keys, x, k, false) })
		tBrute := timeIt(func() { bruteRes = e.BruteForceTopK(keys, x, k, false) })
		p := func(res []join.CorrMatch) float64 {
			ids := make([]string, len(res))
			for i, r := range res {
				ids[i] = r.ColumnKey
			}
			return metrics.PrecisionAtK(ids, truth, k)
		}
		rep.Rows = append(rep.Rows,
			[]string{"qcr-sketch", d(k), f(p(sketchRes)), ms(tSketch)},
			[]string{"exact-scan", d(k), f(p(bruteRes)), ms(tBrute)},
		)
	}
	return rep
}

// E10Mate reproduces MATE's super-key pruning result (Esmailoghli et
// al., VLDB 2022, Fig 7 shape): on multi-attribute joins the XASH
// row signature rejects most single-attribute candidates before
// verification, with identical answers.
func E10Mate() Report {
	const nTables = 60
	rng := rand.New(rand.NewSource(1010))
	var tables []*table.Table
	for t := 0; t < nTables; t++ {
		n := 150 + rng.Intn(150)
		first := make([]string, n)
		last := make([]string, n)
		city := make([]string, n)
		shift := rng.Intn(20)
		for i := 0; i < n; i++ {
			e := rng.Intn(400)
			first[i] = fmt.Sprintf("first_%03d", e%120)
			last[i] = fmt.Sprintf("last_%03d", (e+shift)%90)
			city[i] = fmt.Sprintf("city_%02d", (e+shift)%40)
		}
		tables = append(tables, table.MustNew(fmt.Sprintf("t%02d", t), "t",
			[]*table.Column{
				table.NewColumn("fname", first),
				table.NewColumn("lname", last),
				table.NewColumn("city", city),
			}))
	}
	m := join.NewMateIndex(tables)
	// Queries: composite rows sampled from an indexed table.
	q := tables[0]
	mkQuery := func(nAttrs int) [][]string {
		out := make([][]string, nAttrs)
		for a := 0; a < nAttrs; a++ {
			out[a] = q.Columns[a].Values[:80]
		}
		return out
	}
	rep := Report{
		ID:     "E10",
		Title:  "MATE: multi-attribute join with XASH super-key filtering",
		Header: []string{"attrs", "filter", "candidates", "verified", "pruned", "query_ms"},
		Notes:  "with more attributes the super key prunes a growing share of candidates; results identical with and without",
	}
	for _, nAttrs := range []int{2, 3} {
		query := mkQuery(nAttrs)
		for _, use := range []bool{false, true} {
			var st join.MateStats
			var res []join.MultiMatch
			elapsed := timeIt(func() { res, st = m.Search(query, 10, use) })
			name := "off"
			if use {
				name = "xash"
			}
			_ = res
			rep.Rows = append(rep.Rows, []string{
				d(nAttrs), name, d(st.Candidates), d(st.Verified), d(st.Pruned), ms(elapsed),
			})
		}
	}
	return rep
}

// E11Pexeso reproduces the fuzzy-join robustness result (Dong et al.,
// ICDE 2021, Fig 8 shape): as join keys get dirtier, exact equi-join
// overlap collapses while embedding-based fuzzy matching holds.
func E11Pexeso() Report {
	const n = 150
	rng := rand.New(rand.NewSource(1111))
	clean := make([]string, n)
	for i := range clean {
		clean[i] = fmt.Sprintf("organization_entity_%05d", i)
	}
	model := fuzzyModel()
	rep := Report{
		ID:     "E11",
		Title:  "PEXESO-style fuzzy join vs exact equi-join on dirty keys",
		Header: []string{"corruption", "exact_matched", "fuzzy_matched", "pivot_skip_frac"},
		Notes:  "exact match fraction decays linearly with corruption; fuzzy matching stays near 1",
	}
	for _, rate := range []float64{0, 0.2, 0.4, 0.6, 0.8} {
		dirty := datagen.CorruptValues(clean, rate, rng)
		// Exact overlap fraction.
		exact := float64(minhash.ExactOverlap(clean, dirty)) / float64(n)
		// Fuzzy matched fraction.
		fz := join.NewFuzzyJoiner(model, 4)
		if err := fz.AddColumn("lake.dirty", dirty); err != nil {
			panic(err)
		}
		res, st := fz.Search(clean, 0.85, 0)
		fuzzy := 0.0
		if len(res) > 0 {
			fuzzy = res[0].MatchedFraction
		}
		skipFrac := 0.0
		if st.Comparisons+st.PivotSkips > 0 {
			skipFrac = float64(st.PivotSkips) / float64(st.Comparisons+st.PivotSkips)
		}
		rep.Rows = append(rep.Rows, []string{f(rate), f(exact), f(fuzzy), f(skipFrac)})
	}
	return rep
}

// fuzzyModel returns the char-gram-only embedding model fuzzy joins
// use in the experiments (no training corpus: every value falls back
// to its character-gram vector).
func fuzzyModel() *embedding.Model {
	return embedding.Train(nil, embedding.Config{Dim: 64, Seed: 5})
}
