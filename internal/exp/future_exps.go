package exp

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"tablehound/internal/annotate"
	"tablehound/internal/datagen"
	"tablehound/internal/learned"
	"tablehound/internal/table"
)

// E19Learned explores the tutorial's Section 3 question — "whether
// learned indices can be effective beyond single-table data
// structures" — on a data-lake dictionary workload: point lookups in
// the sorted hashed-token universe an inverted index keeps. The
// piecewise-linear learned index answers in O(log segments + log eps)
// comparisons versus O(log n) for binary search; on the near-uniform
// hash key distribution the model needs very few segments.
func E19Learned() Report {
	rep := Report{
		ID:     "E19",
		Title:  "Learned index over data-lake token dictionaries (Section 3)",
		Header: []string{"keys", "epsilon", "segments", "learned_ns", "binary_ns"},
		Notes:  "segment count stays tiny on hash-distributed keys; learned lookups need fewer comparisons than binary search, and lookup time does not grow with n the way binary search's does",
	}
	rng := rand.New(rand.NewSource(1919))
	for _, n := range []int{100000, 1000000} {
		keys := make([]uint64, 0, n)
		seen := make(map[uint64]bool, n)
		for len(keys) < n {
			k := rng.Uint64() >> 1
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, eps := range []int{16, 64, 256} {
			ix, err := learned.New(keys, eps)
			if err != nil {
				panic(err)
			}
			probes := make([]uint64, 4096)
			for i := range probes {
				probes[i] = keys[rng.Intn(len(keys))]
			}
			tLearned := timeIt(func() {
				for _, k := range probes {
					if _, ok := ix.Lookup(k); !ok {
						panic("lost key")
					}
				}
			})
			tBinary := timeIt(func() {
				for _, k := range probes {
					if _, ok := ix.BinaryLookup(k); !ok {
						panic("lost key")
					}
				}
			})
			rep.Rows = append(rep.Rows, []string{
				d(n), d(eps), d(ix.NumSegments()),
				fmt.Sprintf("%.0f", float64(tLearned.Nanoseconds())/float64(len(probes))),
				fmt.Sprintf("%.0f", float64(tBinary.Nanoseconds())/float64(len(probes))),
			})
		}
	}
	return rep
}

// E20QueryTimeAnnotation examines the tutorial's Section 3 question
// of moving semantic annotation from offline batch pipelines to query
// time: batch annotation pays for the whole lake before the first
// query; query-time annotation (with a cache) pays only for tables a
// query touches. The crossover arrives when enough distinct tables
// have been queried — the trade-off a discovery system must navigate.
func E20QueryTimeAnnotation() Report {
	lake := datagen.Generate(datagen.Config{
		Seed:              2020,
		NumDomains:        16,
		DomainSize:        120,
		NumTemplates:      15,
		TablesPerTemplate: 8,
		NoiseCols:         -1,
		NumericCols:       -1,
	})
	// Train the annotator on a held-out slice of the lake.
	var train []annotate.Example
	for _, tbl := range lake.Tables[:30] {
		for _, c := range tbl.Columns {
			if dd, ok := lake.ColumnDomain[table.ColumnKey(tbl.ID, c.Name)]; ok {
				train = append(train, annotate.Example{Values: c.Values, Header: c.Name, Label: lake.DomainNames[dd]})
			}
		}
	}
	a, err := annotate.Train(train, annotate.Config{Epochs: 10, Seed: 1})
	if err != nil {
		panic(err)
	}
	corpus := lake.Tables[30:]
	annotateOne := func(t *table.Table) {
		a.AnnotateTable(t, true)
	}
	// Offline: annotate everything up front.
	offline := timeIt(func() {
		for _, t := range corpus {
			annotateOne(t)
		}
	})
	// Query-time: each query touches 5 tables; cache hits are free.
	rng := rand.New(rand.NewSource(3))
	cached := make(map[string]bool)
	var online time.Duration
	rep := Report{
		ID:     "E20",
		Title:  fmt.Sprintf("Query-time vs batch annotation (%d tables; batch cost %.0f ms)", len(corpus), float64(offline.Milliseconds())),
		Header: []string{"queries", "online_ms", "batch_ms", "tables_annotated"},
		Notes:  "query-time annotation stays below the batch cost until most of the lake has been touched; batch pays everything before the first query",
	}
	checkpoints := map[int]bool{1: true, 5: true, 10: true, 25: true, 50: true}
	for q := 1; q <= 50; q++ {
		for i := 0; i < 5; i++ {
			t := corpus[rng.Intn(len(corpus))]
			if cached[t.ID] {
				continue
			}
			cached[t.ID] = true
			online += timeIt(func() { annotateOne(t) })
		}
		if checkpoints[q] {
			rep.Rows = append(rep.Rows, []string{
				d(q), ms(online), ms(offline), d(len(cached)),
			})
		}
	}
	return rep
}
