package exp

import (
	"fmt"
	"math/rand"

	"tablehound/internal/aurum"
	"tablehound/internal/embedding"
	"tablehound/internal/schema"
	"tablehound/internal/table"
)

// E21Valentine reproduces the Valentine matcher comparison (Koutras
// et al., ICDE 2021 shape): schema-only matchers collapse when
// headers are renamed, instance-based matchers survive, and the
// combined matcher is at least as good everywhere — the Section 2.1
// point that lake metadata cannot be trusted.
func E21Valentine() Report {
	rng := rand.New(rand.NewSource(2121))
	// Table pairs with known column alignment; sweep header noise:
	// fraction of target headers replaced with opaque names.
	const nPairs = 20
	mkPair := func(id int, renameFrac float64) (*table.Table, *table.Table, map[string]string) {
		nCols := 4
		nRows := 40
		src := make([]*table.Column, nCols)
		dst := make([]*table.Column, nCols)
		truth := make(map[string]string, nCols)
		for c := 0; c < nCols; c++ {
			name := fmt.Sprintf("field_%d_%d", id, c)
			vals := make([]string, nRows)
			for r := range vals {
				vals[r] = fmt.Sprintf("val_%d_%d_%03d", id, c, (r*3)%60)
			}
			src[c] = table.NewColumn(name, vals)
			// Target shares ~60% of values, possibly renamed.
			dvals := make([]string, nRows)
			for r := range dvals {
				dvals[r] = fmt.Sprintf("val_%d_%d_%03d", id, c, (r*3+24)%60)
			}
			dstName := name
			if rng.Float64() < renameFrac {
				// Fully opaque rename: no shared tokens or suffixes.
				dstName = fmt.Sprintf("x%04d", rng.Intn(10000))
			}
			dst[c] = table.NewColumn(dstName, dvals)
			truth[name] = dstName
		}
		s := table.MustNew(fmt.Sprintf("s%d", id), "s", src)
		d := table.MustNew(fmt.Sprintf("d%d", id), "d", dst)
		return s, d, truth
	}
	model := embedding.Train(nil, embedding.Config{Dim: 48, Seed: 21})
	matchers := []struct {
		name string
		m    schema.Matcher
	}{
		{"name", schema.NameMatcher{}},
		{"instance", schema.InstanceMatcher{Model: model}},
		{"combined", schema.CombinedMatcher{Instance: schema.InstanceMatcher{Model: model}, NameWeight: 0.3}},
	}
	rep := Report{
		ID:     "E21",
		Title:  "Valentine-style matcher comparison under header renaming",
		Header: []string{"rename_frac", "matcher", "accuracy"},
		Notes:  "name-only accuracy collapses as headers are renamed; instance and combined matchers stay high",
	}
	for _, renameFrac := range []float64{0, 0.5, 1.0} {
		// Regenerate the same pairs per fraction (fresh rng state).
		rng = rand.New(rand.NewSource(2121))
		type pairCase struct {
			s, d  *table.Table
			truth map[string]string
		}
		var cases []pairCase
		for p := 0; p < nPairs; p++ {
			s, d, truth := mkPair(p, renameFrac)
			cases = append(cases, pairCase{s, d, truth})
		}
		for _, mm := range matchers {
			correct, total := 0, 0
			for _, pc := range cases {
				got := map[string]string{}
				for _, c := range schema.Match(pc.s, pc.d, mm.m, 0.25) {
					got[c.Source] = c.Target
				}
				for s, d := range pc.truth {
					total++
					if got[s] == d {
						correct++
					}
				}
			}
			rep.Rows = append(rep.Rows, []string{
				f(renameFrac), mm.name, f(float64(correct) / float64(total)),
			})
		}
	}
	return rep
}

// E22Aurum evaluates Aurum-style join-path discovery (Fernandez et
// al., ICDE 2018): on a lake of planted FK chains, the discovery
// graph finds the multi-hop join path connecting chain endpoints,
// does not hallucinate paths across unrelated chains, and answers in
// milliseconds.
func E22Aurum() Report {
	const (
		nChains  = 8
		chainLen = 4 // tables per chain
		nRows    = 60
	)
	var tables []*table.Table
	for ch := 0; ch < nChains; ch++ {
		// Chain: t0.key0 <- t1.(fk=key0, key1) <- t2.(fk=key1, key2) ...
		for pos := 0; pos < chainLen; pos++ {
			cols := []*table.Column{}
			if pos > 0 {
				fk := make([]string, nRows)
				for r := range fk {
					fk[r] = fmt.Sprintf("c%d_k%d_%03d", ch, pos-1, r%40)
				}
				cols = append(cols, table.NewColumn(fmt.Sprintf("ref_%d", pos-1), fk))
			}
			key := make([]string, nRows)
			for r := range key {
				key[r] = fmt.Sprintf("c%d_k%d_%03d", ch, pos, r)
			}
			cols = append(cols, table.NewColumn(fmt.Sprintf("key_%d", pos), key))
			tables = append(tables, table.MustNew(
				fmt.Sprintf("c%dt%d", ch, pos), "chain table", cols))
		}
	}
	var g *aurum.Graph
	buildTime := timeIt(func() {
		var err error
		g, err = aurum.Build(tables, aurum.Config{})
		if err != nil {
			panic(err)
		}
	})
	rep := Report{
		ID:     "E22",
		Title:  fmt.Sprintf("Aurum join-path discovery (%d cols, %d edges, build %s ms)", g.NumColumns(), g.NumEdges(), ms(buildTime)),
		Header: []string{"query", "found", "expected", "query_ms"},
		Notes:  "every planted chain is recovered end-to-end; no path is invented between unrelated chains",
	}
	// Within-chain paths: endpoints need chainLen-1 hops.
	foundWithin := 0
	var elapsed float64
	for ch := 0; ch < nChains; ch++ {
		from := fmt.Sprintf("c%dt0", ch)
		to := fmt.Sprintf("c%dt%d", ch, chainLen-1)
		var path []aurum.JoinHop
		d := timeIt(func() { path = g.JoinPath(from, to, aurum.ContentSim, chainLen) })
		elapsed += float64(d.Microseconds()) / 1000
		if len(path) == chainLen-1 {
			foundWithin++
		}
	}
	rep.Rows = append(rep.Rows, []string{"within-chain endpoints", d(foundWithin), d(nChains), f(elapsed / nChains)})
	// Cross-chain: no path must exist.
	foundCross := 0
	for ch := 0; ch+1 < nChains; ch++ {
		if g.JoinPath(fmt.Sprintf("c%dt0", ch), fmt.Sprintf("c%dt0", ch+1), aurum.ContentSim, chainLen+2) != nil {
			foundCross++
		}
	}
	rep.Rows = append(rep.Rows, []string{"cross-chain pairs", d(foundCross), "0", "-"})
	return rep
}
