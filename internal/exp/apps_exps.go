package exp

import (
	"fmt"
	"math"
	"math/rand"

	"tablehound/internal/apps"
	"tablehound/internal/datagen"
	"tablehound/internal/embedding"
	"tablehound/internal/join"
	"tablehound/internal/kb"
	"tablehound/internal/keyword"
	"tablehound/internal/metrics"
	"tablehound/internal/navigation"
	"tablehound/internal/table"
)

// E13Navigation reproduces the data-lake organization result
// (Nargesian et al., SIGMOD 2020, Fig 6 shape): the expected number
// of items a user examines reaching a target through the hierarchy is
// far below scanning a flat list, and grows slowly with lake size.
func E13Navigation() Report {
	rep := Report{
		ID:     "E13",
		Title:  "Data lake organization: navigation cost vs flat scan",
		Header: []string{"tables", "fanout", "mean_nav_cost", "flat_cost", "depth"},
		Notes:  "navigation cost grows ~logarithmically with lake size; flat cost grows linearly",
	}
	for _, nTpl := range []int{4, 8, 16} {
		lake := datagen.Generate(datagen.Config{
			Seed:              1300 + int64(nTpl),
			NumDomains:        20,
			DomainSize:        60,
			NumTemplates:      nTpl,
			TablesPerTemplate: 16,
		})
		model := embedding.Train(lake.ColumnContexts(), embedding.Config{Dim: 48, Seed: 13})
		org := navigation.Organize(lake.Tables, model, navigation.Config{Fanout: 4, Seed: 13})
		total := 0.0
		for _, t := range lake.Tables {
			total += float64(org.NavigationCost(t.ID))
		}
		n := len(lake.Tables)
		rep.Rows = append(rep.Rows, []string{
			d(n), "4", f(total / float64(n)), f(navigation.FlatCost(n)), d(org.Depth()),
		})
	}
	return rep
}

// E14Arda reproduces the ARDA result (Chepurko et al., VLDB 2020, Fig
// 4 shape): joining in features discovered by joinable search lowers
// held-out prediction error versus the base table alone, and feature
// selection filters the junk features.
func E14Arda() Report {
	rng := rand.New(rand.NewSource(1414))
	const n = 400
	keys := make([]string, n)
	signal := make([]float64, n)
	target := make([]string, n)
	for i := 0; i < n; i++ {
		keys[i] = fmt.Sprintf("entity_%04d", i)
		signal[i] = rng.NormFloat64() * 10
		target[i] = fmt.Sprintf("%.3f", 2.5*signal[i]+rng.NormFloat64()*2)
	}
	base := table.MustNew("base", "base", []*table.Column{
		table.NewColumn("id", keys),
		table.NewColumn("target", target),
	})
	// Lake: one table with the signal feature, several with junk.
	mkNum := func(vals []float64) []string {
		out := make([]string, len(vals))
		for i, v := range vals {
			out[i] = fmt.Sprintf("%.3f", v)
		}
		return out
	}
	lakeTables := []*table.Table{
		table.MustNew("feat", "features", []*table.Column{
			table.NewColumn("id", keys),
			table.NewColumn("signal", mkNum(signal)),
		}),
	}
	for j := 0; j < 5; j++ {
		junk := make([]float64, n)
		for i := range junk {
			junk[i] = rng.NormFloat64()
		}
		lakeTables = append(lakeTables, table.MustNew(fmt.Sprintf("junk%d", j), "junk",
			[]*table.Column{
				table.NewColumn("id", keys),
				table.NewColumn(fmt.Sprintf("noise%d", j), mkNum(junk)),
			}))
	}
	b := join.NewBuilder(2)
	byID := map[string]*table.Table{"base": base}
	b.AddTable(base)
	for _, t := range lakeTables {
		b.AddTable(t)
		byID[t.ID] = t
	}
	eng, err := b.Build()
	if err != nil {
		panic(err)
	}
	aug := apps.NewAugmenter(eng, func(id string) *table.Table { return byID[id] })

	y, _ := base.Column("target").Numbers()
	split := n * 7 / 10
	evalModel := func(feats []apps.Feature) float64 {
		x := make([][]float64, n)
		for i := range x {
			x[i] = make([]float64, len(feats))
			for j, ft := range feats {
				x[i][j] = ft.Values[i]
			}
		}
		m := apps.FitRidge(x[:split], y[:split], 0.01, 300)
		return m.RMSE(x[split:], y[split:])
	}
	baseRMSE := evalModel(nil)
	allFeats, err := aug.Discover(base, "id", "target", 10, 0.5)
	if err != nil {
		panic(err)
	}
	selected := allFeats
	if len(selected) > 1 {
		selected = selected[:1]
	}
	augRMSE := evalModel(selected)
	// No-selection variant: take junk features too.
	junkOnly := make([]apps.Feature, 0)
	for _, ft := range allFeats {
		if ft.Score < 0.3 {
			junkOnly = append(junkOnly, ft)
		}
	}
	junkRMSE := evalModel(junkOnly)
	if math.IsNaN(junkRMSE) {
		junkRMSE = baseRMSE
	}
	rep := Report{
		ID:     "E14",
		Title:  "ARDA-style augmentation: held-out RMSE with discovered features",
		Header: []string{"features", "heldout_RMSE"},
		Notes:  "selected lake feature slashes error vs the base table; junk features alone do not",
	}
	rep.Rows = append(rep.Rows,
		[]string{"base-only", f(baseRMSE)},
		[]string{"junk-only", f(junkRMSE)},
		[]string{"arda-selected", f(augRMSE)},
	)
	return rep
}

// E15Keyword compares BM25 against boolean metadata retrieval (the
// Section 2.3 background). The corpus reproduces the regime ranked
// retrieval exists for: distractor tables mention the query terms in
// passing (descriptions, headers) while relevant tables carry them as
// their primary topic (name). Boolean distinct-term counting ties the
// two groups; BM25's field weighting and term statistics separate
// them.
func E15Keyword() Report {
	topics := []string{"city population", "company revenue", "river flow", "team roster"}
	ix := keyword.NewIndex()
	relevantFor := make([]map[string]bool, len(topics))
	for ti, topic := range topics {
		relevantFor[ti] = make(map[string]bool)
		// Relevant: topic in the table name.
		for i := 0; i < 6; i++ {
			id := fmt.Sprintf("rel%d_%d", ti, i)
			t := table.MustNew(id, fmt.Sprintf("%s %d", topic, i),
				[]*table.Column{table.NewColumn("value", []string{"x"})})
			t.Description = "reference statistics"
			ix.Add(t)
			relevantFor[ti][id] = true
		}
		// Distractors: topic words buried in the description of tables
		// about something else.
		for i := 0; i < 9; i++ {
			id := fmt.Sprintf("dis%d_%d", ti, i)
			t := table.MustNew(id, fmt.Sprintf("miscellaneous dataset %d %d", ti, i),
				[]*table.Column{table.NewColumn("value", []string{"x"})})
			t.Description = fmt.Sprintf("unrelated records, normalized by %s figures", topic)
			ix.Add(t)
		}
	}
	ix.Finish()
	var retrievedBM, retrievedBool [][]string
	var relevant []map[string]bool
	for ti, topic := range topics {
		toIDs := func(rs []keyword.Result) []string {
			out := make([]string, len(rs))
			for i, r := range rs {
				out[i] = r.TableID
			}
			return out
		}
		retrievedBM = append(retrievedBM, toIDs(ix.Search(topic, 12)))
		retrievedBool = append(retrievedBool, toIDs(ix.BooleanSearch(topic, 12, false)))
		relevant = append(relevant, relevantFor[ti])
	}
	rep := Report{
		ID:     "E15",
		Title:  "Metadata keyword search: BM25 vs boolean",
		Header: []string{"method", "MAP"},
		Notes:  "BM25 term weighting beats unweighted boolean matching",
	}
	rep.Rows = append(rep.Rows,
		[]string{"bm25", f(metrics.MAP(retrievedBM, relevant))},
		[]string{"boolean", f(metrics.MAP(retrievedBool, relevant))},
	)
	return rep
}

// E18Stitch reproduces the table-stitching result (Lehmberg & Bizer,
// VLDB 2017 shape): sharded web-table-like corpora yield too little
// per-table evidence for KB completion; stitching same-schema shards
// consolidates the evidence and recovers far more facts.
func E18Stitch() Report {
	rng := rand.New(rand.NewSource(1818))
	const (
		nPairs  = 120
		nShards = 60
	)
	// Ground truth relation.
	subj := make([]string, nPairs)
	obj := make([]string, nPairs)
	for i := range subj {
		subj[i] = fmt.Sprintf("city_%03d", i)
		obj[i] = fmt.Sprintf("country_%03d", i)
	}
	// KB knows 30% of the facts.
	newKB := func() *kb.KB {
		k := kb.New()
		for i := 0; i < nPairs*3/10; i++ {
			k.AddFact(subj[i], "capitalOf", obj[i])
		}
		return k
	}
	// Web-table-like shards: each holds only TWO pairs — below the
	// minimum evidence CompleteKB needs from one table, which is the
	// Lehmberg & Bizer starting point (individual web tables are too
	// small to support inference).
	var shards []*table.Table
	for s := 0; s < nShards; s++ {
		var cs, os []string
		for j := 0; j < 2; j++ {
			i := rng.Intn(nPairs)
			cs = append(cs, subj[i])
			os = append(os, obj[i])
		}
		shards = append(shards, table.MustNew(fmt.Sprintf("shard%02d", s), "capitals shard",
			[]*table.Column{
				table.NewColumn("city", cs),
				table.NewColumn("country", os),
			}))
	}
	kRaw := newKB()
	addedRaw := apps.CompleteKB(kRaw, shards, "capitalOf", 0.25)
	kStitched := newKB()
	stitched := apps.Stitch(shards)
	addedStitched := apps.CompleteKB(kStitched, stitched, "capitalOf", 0.25)
	rep := Report{
		ID:     "E18",
		Title:  "Table stitching for KB completion (120 true facts, 36 known)",
		Header: []string{"corpus", "tables", "facts_added"},
		Notes:  "raw shards are individually too thin to support completion; the stitched corpus recovers most missing facts",
	}
	rep.Rows = append(rep.Rows,
		[]string{"raw-shards", d(len(shards)), d(addedRaw)},
		[]string{"stitched", d(len(stitched)), d(addedStitched)},
	)
	return rep
}
