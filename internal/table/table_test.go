package table

import (
	"bytes"
	"strings"
	"testing"
)

func TestInferType(t *testing.T) {
	cases := []struct {
		name string
		vals []string
		want Type
	}{
		{"ints", []string{"1", "2", "30"}, TypeInt},
		{"floats", []string{"1.5", "2", "3.25"}, TypeFloat},
		{"bools", []string{"true", "False", "yes"}, TypeBool},
		{"dates", []string{"2020-01-02", "1999-12-31"}, TypeDate},
		{"slashDates", []string{"2020/01/02", "1999/12/31"}, TypeDate},
		{"strings", []string{"alice", "bob"}, TypeString},
		{"mixedMostlyInt", []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "x"}, TypeInt},
		{"mixedHalf", []string{"1", "x"}, TypeString},
		{"empty", nil, TypeUnknown},
		{"allMissing", []string{"", ""}, TypeUnknown},
		{"badDate", []string{"2020-13-02", "2020-00-40"}, TypeString},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := InferType(c.vals); got != c.want {
				t.Errorf("InferType(%v) = %v, want %v", c.vals, got, c.want)
			}
		})
	}
}

func TestColumnStats(t *testing.T) {
	c := NewColumn("x", []string{"a", "b", "a", "", "c"})
	if got := c.Cardinality(); got != 3 {
		t.Errorf("Cardinality = %d, want 3", got)
	}
	if got := c.NullFraction(); got != 0.2 {
		t.Errorf("NullFraction = %v, want 0.2", got)
	}
	d := c.DistinctSorted()
	if len(d) != 3 || d[0] != "a" || d[2] != "c" {
		t.Errorf("DistinctSorted = %v", d)
	}
}

func TestColumnNumbers(t *testing.T) {
	c := NewColumn("n", []string{"1", "2.5", "", "oops", "4"})
	nums, n := c.Numbers()
	if n != 3 || len(nums) != 3 {
		t.Fatalf("Numbers count = %d, want 3", n)
	}
	if nums[0] != 1 || nums[1] != 2.5 || nums[2] != 4 {
		t.Errorf("Numbers = %v", nums)
	}
}

func TestColumnInvalidateCache(t *testing.T) {
	c := NewColumn("x", []string{"a"})
	if c.Cardinality() != 1 {
		t.Fatal("want cardinality 1")
	}
	c.Values = append(c.Values, "b")
	c.InvalidateCache()
	if c.Cardinality() != 2 {
		t.Error("cache not invalidated")
	}
}

func TestNewValidatesLengths(t *testing.T) {
	_, err := New("t1", "t", []*Column{
		NewColumn("a", []string{"1", "2"}),
		NewColumn("b", []string{"1"}),
	})
	if err == nil {
		t.Fatal("want error for ragged columns")
	}
}

func TestTableAccessors(t *testing.T) {
	tbl := MustNew("t1", "people", []*Column{
		NewColumn("name", []string{"alice", "bob"}),
		NewColumn("age", []string{"30", "25"}),
	})
	if tbl.NumRows() != 2 || tbl.NumCols() != 2 {
		t.Fatalf("dims = %dx%d", tbl.NumRows(), tbl.NumCols())
	}
	if tbl.Column("age") == nil || tbl.Column("nope") != nil {
		t.Error("Column lookup wrong")
	}
	if tbl.ColumnIndex("age") != 1 || tbl.ColumnIndex("nope") != -1 {
		t.Error("ColumnIndex wrong")
	}
	row := tbl.Row(1)
	if row[0] != "bob" || row[1] != "25" {
		t.Errorf("Row(1) = %v", row)
	}
	h := tbl.Header()
	if h[0] != "name" || h[1] != "age" {
		t.Errorf("Header = %v", h)
	}
}

func TestColumnKeyRoundTrip(t *testing.T) {
	k := ColumnKey("t1", "col.with.dots")
	tid, col := SplitColumnKey(k)
	if tid != "t1" || col != "col.with.dots" {
		t.Errorf("SplitColumnKey(%q) = %q, %q", k, tid, col)
	}
	tid, col = SplitColumnKey("nodot")
	if tid != "nodot" || col != "" {
		t.Errorf("SplitColumnKey(nodot) = %q, %q", tid, col)
	}
}

func TestFromCSV(t *testing.T) {
	in := "name,age,city\nalice,30,boston\nbob,25,nyc\ncarol,41,\n"
	tbl, err := FromCSV("t1", "people", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 3 || tbl.NumCols() != 3 {
		t.Fatalf("dims = %dx%d", tbl.NumRows(), tbl.NumCols())
	}
	if tbl.Column("age").Type != TypeInt {
		t.Errorf("age type = %v", tbl.Column("age").Type)
	}
	if tbl.Column("city").Values[2] != "" {
		t.Error("missing value not preserved")
	}
}

func TestFromCSVRagged(t *testing.T) {
	in := "a,b\n1,2,3\n4\n"
	tbl, err := FromCSV("t", "t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	if tbl.Column("b").Values[1] != "" {
		t.Error("short row not padded")
	}
}

func TestFromCSVEmptyHeaderNames(t *testing.T) {
	in := ",b\n1,2\n"
	tbl, err := FromCSV("t", "t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Columns[0].Name != "col0" {
		t.Errorf("empty header renamed to %q", tbl.Columns[0].Name)
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	tbl := MustNew("t1", "t", []*Column{
		NewColumn("a", []string{"1", "2"}),
		NewColumn("b", []string{"x", "y"}),
	})
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := FromCSV("t1", "t", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 2 || back.Column("b").Values[1] != "y" {
		t.Error("round trip lost data")
	}
}

func TestTypeString(t *testing.T) {
	if TypeInt.String() != "int" || Type(99).String() == "" {
		t.Error("Type.String broken")
	}
	if !TypeFloat.IsNumeric() || TypeString.IsNumeric() {
		t.Error("IsNumeric wrong")
	}
}

func TestContentHash(t *testing.T) {
	mk := func() *Table {
		tb, err := New("t1", "people", []*Column{
			{Name: "name", Type: TypeString, Values: []string{"ada", "bob"}},
			{Name: "age", Type: TypeInt, Values: []string{"36", "41"}},
		})
		if err != nil {
			t.Fatal(err)
		}
		tb.Description = "roster"
		tb.Tags = []string{"hr"}
		return tb
	}
	base := mk().ContentHash()
	if base != mk().ContentHash() {
		t.Error("ContentHash is not deterministic over equal tables")
	}
	for name, mutate := range map[string]func(*Table){
		"value":       func(tb *Table) { tb.Columns[0].Values[1] = "eve" },
		"column name": func(tb *Table) { tb.Columns[1].Name = "years" },
		"column type": func(tb *Table) { tb.Columns[1].Type = TypeFloat },
		"table name":  func(tb *Table) { tb.Name = "staff" },
		"description": func(tb *Table) { tb.Description = "" },
		"tags":        func(tb *Table) { tb.Tags = nil },
		"id":          func(tb *Table) { tb.ID = "t2" },
	} {
		tb := mk()
		mutate(tb)
		if tb.ContentHash() == base {
			t.Errorf("ContentHash unchanged after mutating %s", name)
		}
	}
}
