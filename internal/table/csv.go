package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// FromCSV reads a table from CSV data. The first record is the header.
// Ragged rows are padded or truncated to the header width so that dirty
// data-lake files still load.
func FromCSV(id, name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // tolerate ragged rows
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read csv header: %w", err)
	}
	for i, h := range header {
		h = strings.TrimSpace(h)
		if h == "" {
			h = fmt.Sprintf("col%d", i)
		}
		header[i] = h
	}
	vals := make([][]string, len(header))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("read csv row: %w", err)
		}
		for i := range header {
			if i < len(rec) {
				vals[i] = append(vals[i], strings.TrimSpace(rec[i]))
			} else {
				vals[i] = append(vals[i], "")
			}
		}
	}
	cols := make([]*Column, len(header))
	for i, h := range header {
		cols[i] = NewColumn(h, vals[i])
	}
	return New(id, name, cols)
}

// FromCSVFile loads a table from a CSV file, deriving the table name
// from the file's base name.
func FromCSVFile(id, path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	return FromCSV(id, name, f)
}

// WriteCSV writes the table as CSV with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header()); err != nil {
		return err
	}
	for i := 0; i < t.NumRows(); i++ {
		if err := cw.Write(t.Row(i)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
