package table

import "errors"

// ErrBadQuery is the sentinel wrapped by every search surface when a
// query carries no usable content — an empty or whitespace-only query
// column, a keyword query with no terms, a query table without usable
// string columns. Callers (notably the HTTP serving layer, which maps
// it to 400 Bad Request) detect it with errors.Is; the wrapping error
// names the surface and the specific defect.
var ErrBadQuery = errors.New("bad query")
