// Package table defines the core data model for data-lake tables:
// typed columns of string-encoded values plus table-level metadata.
// It is the substrate every discovery component operates on.
package table

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Type is the inferred primitive type of a column.
type Type int

// Column types, from most to least specific for inference purposes.
const (
	TypeUnknown Type = iota
	TypeBool
	TypeInt
	TypeFloat
	TypeDate
	TypeString
)

var typeNames = map[Type]string{
	TypeUnknown: "unknown",
	TypeBool:    "bool",
	TypeInt:     "int",
	TypeFloat:   "float",
	TypeDate:    "date",
	TypeString:  "string",
}

func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// IsNumeric reports whether the type holds numbers.
func (t Type) IsNumeric() bool { return t == TypeInt || t == TypeFloat }

// Column is a named, typed sequence of string-encoded values.
// Missing values are represented by the empty string.
//
// Concurrency contract: a Column is safe for concurrent reads —
// including the lazily memoized Distinct/DistinctSorted/Cardinality
// statistics — as long as Values is not mutated. After an in-place
// mutation of Values, call InvalidateCache before the next read; the
// mutation and invalidation must not race with readers.
type Column struct {
	Name   string
	Type   Type
	Values []string

	statsMu  sync.Mutex
	distinct map[string]int // lazily built value -> count
	ordered  []string       // distinct values in first-occurrence order
}

// NewColumn builds a column and infers its type from the values.
func NewColumn(name string, values []string) *Column {
	c := &Column{Name: name, Values: values}
	c.Type = InferType(values)
	return c
}

// Len returns the number of values (including missing ones).
func (c *Column) Len() int { return len(c.Values) }

// stats returns the memoized distinct-value histogram and the distinct
// values in first-occurrence order, building both on first use. The
// returned structures are immutable until InvalidateCache; callers may
// read them without holding the lock.
func (c *Column) stats() (map[string]int, []string) {
	c.statsMu.Lock()
	if c.distinct == nil {
		m := make(map[string]int, len(c.Values))
		var ordered []string
		for _, v := range c.Values {
			if v == "" {
				continue
			}
			if m[v] == 0 {
				ordered = append(ordered, v)
			}
			m[v]++
		}
		c.distinct, c.ordered = m, ordered
	}
	m, ordered := c.distinct, c.ordered
	c.statsMu.Unlock()
	return m, ordered
}

// counts returns the distinct-value histogram, building it on first use.
func (c *Column) counts() map[string]int {
	m, _ := c.stats()
	return m
}

// Distinct returns the distinct non-missing values in first-occurrence
// order. The result is a fresh slice the caller may mutate.
func (c *Column) Distinct() []string {
	_, ordered := c.stats()
	return append([]string(nil), ordered...)
}

// DistinctSorted returns the distinct non-missing values sorted
// lexicographically, for deterministic iteration.
func (c *Column) DistinctSorted() []string {
	out := c.Distinct()
	sort.Strings(out)
	return out
}

// Cardinality returns the number of distinct non-missing values.
func (c *Column) Cardinality() int { return len(c.counts()) }

// NullFraction returns the fraction of missing (empty) values.
func (c *Column) NullFraction() float64 {
	if len(c.Values) == 0 {
		return 0
	}
	n := 0
	for _, v := range c.Values {
		if v == "" {
			n++
		}
	}
	return float64(n) / float64(len(c.Values))
}

// Numbers parses the column as float64s, skipping unparsable or
// missing entries. The second result is the count of parsed values.
func (c *Column) Numbers() ([]float64, int) {
	out := make([]float64, 0, len(c.Values))
	for _, v := range c.Values {
		if v == "" {
			continue
		}
		if f, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
			out = append(out, f)
		}
	}
	return out, len(out)
}

// InvalidateCache discards lazily computed statistics. Call after
// mutating Values in place; must not race with concurrent readers.
func (c *Column) InvalidateCache() {
	c.statsMu.Lock()
	c.distinct, c.ordered = nil, nil
	c.statsMu.Unlock()
}

// Table is a named collection of equal-length columns plus metadata.
type Table struct {
	ID          string
	Name        string
	Description string
	Tags        []string
	Columns     []*Column
}

// New constructs a table from columns, validating equal lengths.
func New(id, name string, cols []*Column) (*Table, error) {
	if len(cols) > 0 {
		n := cols[0].Len()
		for _, c := range cols[1:] {
			if c.Len() != n {
				return nil, fmt.Errorf("table %q: column %q has %d rows, want %d", id, c.Name, c.Len(), n)
			}
		}
	}
	return &Table{ID: id, Name: name, Columns: cols}, nil
}

// MustNew is New but panics on error; for tests and generators.
func MustNew(id, name string, cols []*Column) *Table {
	t, err := New(id, name, cols)
	if err != nil {
		panic(err)
	}
	return t
}

// NumRows returns the row count (0 for a table without columns).
func (t *Table) NumRows() int {
	if len(t.Columns) == 0 {
		return 0
	}
	return t.Columns[0].Len()
}

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.Columns) }

// Column returns the first column with the given name, or nil.
func (t *Table) Column(name string) *Column {
	for _, c := range t.Columns {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ColumnIndex returns the index of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Row returns the i-th row as a slice parallel to Columns.
func (t *Table) Row(i int) []string {
	row := make([]string, len(t.Columns))
	for j, c := range t.Columns {
		row[j] = c.Values[i]
	}
	return row
}

// Header returns the column names in order.
func (t *Table) Header() []string {
	h := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		h[i] = c.Name
	}
	return h
}

// ColumnKey returns the canonical "tableID.columnName" key used by
// indexes to address a single column.
func ColumnKey(tableID, column string) string { return tableID + "." + column }

// SplitColumnKey splits a key produced by ColumnKey. The column name
// is everything after the first dot, so table IDs must not contain dots.
func SplitColumnKey(key string) (tableID, column string) {
	i := strings.Index(key, ".")
	if i < 0 {
		return key, ""
	}
	return key[:i], key[i+1:]
}

// InferType infers the dominant primitive type of a value sample.
// A column is typed T if at least 90% of its non-missing values parse
// as T, preferring the most specific candidate.
func InferType(values []string) Type {
	var total, ints, floats, bools, dates int
	for _, v := range values {
		v = strings.TrimSpace(v)
		if v == "" {
			continue
		}
		total++
		if isBool(v) {
			bools++
		}
		if _, err := strconv.ParseInt(v, 10, 64); err == nil {
			ints++
			floats++ // every int parses as float
		} else if _, err := strconv.ParseFloat(v, 64); err == nil {
			floats++
		}
		if isDate(v) {
			dates++
		}
	}
	if total == 0 {
		return TypeUnknown
	}
	const q = 0.9
	threshold := int(float64(total)*q + 0.5)
	if threshold == 0 {
		threshold = 1
	}
	switch {
	case bools >= threshold:
		return TypeBool
	case ints >= threshold:
		return TypeInt
	case floats >= threshold:
		return TypeFloat
	case dates >= threshold:
		return TypeDate
	default:
		return TypeString
	}
}

func isBool(v string) bool {
	switch strings.ToLower(v) {
	case "true", "false", "yes", "no", "t", "f":
		return true
	}
	return false
}

// isDate recognizes the common ISO forms YYYY-MM-DD and YYYY/MM/DD.
func isDate(v string) bool {
	if len(v) != 10 {
		return false
	}
	sep := v[4]
	if sep != '-' && sep != '/' {
		return false
	}
	if v[7] != sep {
		return false
	}
	for i, ch := range []byte(v) {
		if i == 4 || i == 7 {
			continue
		}
		if ch < '0' || ch > '9' {
			return false
		}
	}
	mo, _ := strconv.Atoi(v[5:7])
	dy, _ := strconv.Atoi(v[8:10])
	return mo >= 1 && mo <= 12 && dy >= 1 && dy <= 31
}

// ContentHash fingerprints the table's full content — ID, metadata,
// and every column's name, type, and values — with FNV-1a 64. Each
// field is hashed with a length prefix so adjacent fields cannot
// collide by concatenation. The hash covers exactly the fields the
// catalog snapshot codec round-trips, so a saved-and-reloaded table
// hashes identically to the in-memory original. Lake generations fold
// these hashes in, which is how replacing a table's contents (same ID,
// different bytes) produces a different generation.
func (t *Table) ContentHash() uint64 {
	h := newContentHash()
	h.str(t.ID)
	h.str(t.Name)
	h.str(t.Description)
	h.strs(t.Tags)
	h.u64(uint64(len(t.Columns)))
	for _, c := range t.Columns {
		h.str(c.Name)
		h.u64(uint64(c.Type))
		h.strs(c.Values)
	}
	return h.sum
}

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

type contentHash struct{ sum uint64 }

func newContentHash() *contentHash { return &contentHash{sum: fnvOffset64} }

func (h *contentHash) bytes(s string) {
	for i := 0; i < len(s); i++ {
		h.sum ^= uint64(s[i])
		h.sum *= fnvPrime64
	}
}

func (h *contentHash) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.sum ^= v & 0xFF
		h.sum *= fnvPrime64
		v >>= 8
	}
}

func (h *contentHash) str(s string) {
	h.u64(uint64(len(s)))
	h.bytes(s)
}

func (h *contentHash) strs(ss []string) {
	h.u64(uint64(len(ss)))
	for _, s := range ss {
		h.str(s)
	}
}
