package table

import (
	"sync"
	"testing"
)

// TestColumnStatsConcurrentReaders exercises the memoized distinct
// stats from many goroutines; run with -race to verify the contract
// that a Column is safe for concurrent reads.
func TestColumnStatsConcurrentReaders(t *testing.T) {
	c := NewColumn("x", []string{"b", "a", "b", "", "c", "a"})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if got := c.Cardinality(); got != 3 {
					t.Errorf("Cardinality = %d, want 3", got)
					return
				}
				d := c.Distinct()
				if len(d) != 3 || d[0] != "b" || d[1] != "a" || d[2] != "c" {
					t.Errorf("Distinct = %v, want first-occurrence order [b a c]", d)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestColumnDistinctReturnsCopy guards against callers mutating the
// shared memo through the returned slice.
func TestColumnDistinctReturnsCopy(t *testing.T) {
	c := NewColumn("x", []string{"a", "b"})
	d := c.Distinct()
	d[0] = "mutated"
	if got := c.Distinct(); got[0] != "a" {
		t.Errorf("memo leaked through returned slice: %v", got)
	}
}
