package table

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestCSVNeverPanics: arbitrary byte soup either parses or errors;
// loading a dirty lake must never crash the system.
func TestCSVNeverPanics(t *testing.T) {
	f := func(data string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		tbl, err := FromCSV("t", "t", strings.NewReader(data))
		if err != nil {
			return true
		}
		// Parsed tables keep the rectangular invariant.
		for _, c := range tbl.Columns {
			if c.Len() != tbl.NumRows() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCSVQuotedFields exercises the quoting corners dirty lakes hit.
func TestCSVQuotedFields(t *testing.T) {
	in := "name,notes\n" +
		"\"smith, jr\",\"said \"\"hi\"\"\"\n" +
		"plain,\"multi\nline\"\n"
	tbl, err := FromCSV("t", "t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	if tbl.Columns[0].Values[0] != "smith, jr" {
		t.Errorf("comma-in-quotes = %q", tbl.Columns[0].Values[0])
	}
	if tbl.Columns[1].Values[0] != `said "hi"` {
		t.Errorf("escaped quotes = %q", tbl.Columns[1].Values[0])
	}
	if !strings.Contains(tbl.Columns[1].Values[1], "\n") {
		t.Error("multiline cell lost newline")
	}
}

// TestInferTypeProperty: inference never returns an out-of-range type
// and is insensitive to value order.
func TestInferTypeProperty(t *testing.T) {
	f := func(vals []string) bool {
		a := InferType(vals)
		if a < TypeUnknown || a > TypeString {
			return false
		}
		// Reverse and re-infer.
		rev := make([]string, len(vals))
		for i, v := range vals {
			rev[len(vals)-1-i] = v
		}
		return InferType(rev) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
