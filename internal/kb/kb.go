// Package kb provides the knowledge-base substrate used by semantic
// table discovery: a type hierarchy (ontology), entity-to-type
// assertions, and binary relation facts. It stands in for the curated
// knowledge graphs (YAGO, proprietary ontologies) that TUS's semantic
// unionability and SANTOS's relationship semantics consume, exposing
// the operations those systems need — type lookup with ancestors,
// least common ancestor, hierarchy-aware type similarity, and
// relation lookup between value pairs.
//
// The tutorial's "common wisdom" trade-off (KBs: high precision,
// partial coverage) is modeled directly: values absent from the KB
// simply have no types, and Coverage reports the fraction covered.
package kb

import (
	"sort"
	"sync"

	"tablehound/internal/tokenize"
)

// KB is an ontology plus entity and relation assertions. Not safe for
// concurrent mutation; safe for concurrent reads after loading (the
// internal depth memo is mutex-guarded, so read paths that populate it
// lazily — TypeSimilarity, DominantType — may run concurrently).
type KB struct {
	parents  map[string][]string // type -> direct parents
	children map[string][]string
	entities map[string][]string      // normalized value -> direct types
	rels     map[pair]map[string]bool // (subj, obj) -> predicates
	relNames map[string]int           // predicate -> fact count
	depthMu  sync.Mutex
	depth    map[string]int // type -> depth from a root (memo)
}

type pair struct{ s, o string }

// New returns an empty KB.
func New() *KB {
	return &KB{
		parents:  make(map[string][]string),
		children: make(map[string][]string),
		entities: make(map[string][]string),
		rels:     make(map[pair]map[string]bool),
		relNames: make(map[string]int),
		depth:    make(map[string]int),
	}
}

// AddType asserts child IS-A parent in the type hierarchy.
func (k *KB) AddType(child, parent string) {
	for _, p := range k.parents[child] {
		if p == parent {
			return
		}
	}
	k.parents[child] = append(k.parents[child], parent)
	k.children[parent] = append(k.children[parent], child)
	k.depth = make(map[string]int) // invalidate memo
}

// AddEntity asserts that a value has the given direct types. The value
// is normalized, matching how columns are normalized before lookup.
func (k *KB) AddEntity(value string, types ...string) {
	v := tokenize.Normalize(value)
	if v == "" {
		return
	}
	have := k.entities[v]
	for _, t := range types {
		dup := false
		for _, h := range have {
			if h == t {
				dup = true
				break
			}
		}
		if !dup {
			have = append(have, t)
		}
	}
	k.entities[v] = have
}

// AddFact asserts predicate(subj, obj) between two entity values.
func (k *KB) AddFact(subj, pred, obj string) {
	p := pair{tokenize.Normalize(subj), tokenize.Normalize(obj)}
	m, ok := k.rels[p]
	if !ok {
		m = make(map[string]bool)
		k.rels[p] = m
	}
	if !m[pred] {
		m[pred] = true
		k.relNames[pred]++
	}
}

// Types returns the direct types of a value (nil if uncovered).
func (k *KB) Types(value string) []string {
	return k.entities[tokenize.Normalize(value)]
}

// AllTypes returns the direct types of a value plus all ancestors,
// sorted for determinism.
func (k *KB) AllTypes(value string) []string {
	direct := k.Types(value)
	if len(direct) == 0 {
		return nil
	}
	seen := make(map[string]bool)
	var walk func(t string)
	walk = func(t string) {
		if seen[t] {
			return
		}
		seen[t] = true
		for _, p := range k.parents[t] {
			walk(p)
		}
	}
	for _, t := range direct {
		walk(t)
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Has reports whether the value is covered by the KB.
func (k *KB) Has(value string) bool {
	return len(k.entities[tokenize.Normalize(value)]) > 0
}

// Predicates returns the relation predicates asserted between two
// values, sorted, or nil.
func (k *KB) Predicates(subj, obj string) []string {
	m := k.rels[pair{tokenize.Normalize(subj), tokenize.Normalize(obj)}]
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// NumEntities returns the number of values with at least one type.
func (k *KB) NumEntities() int { return len(k.entities) }

// NumFacts returns the number of (subj, pred, obj) facts.
func (k *KB) NumFacts() int {
	n := 0
	for _, c := range k.relNames {
		n += c
	}
	return n
}

// PredicateCount returns how many facts use the predicate.
func (k *KB) PredicateCount(pred string) int { return k.relNames[pred] }

// Coverage returns the fraction of the given values that the KB types.
func (k *KB) Coverage(values []string) float64 {
	if len(values) == 0 {
		return 0
	}
	n := 0
	for _, v := range values {
		if k.Has(v) {
			n++
		}
	}
	return float64(n) / float64(len(values))
}

// typeDepth returns the depth of a type (0 for roots), memoized. The
// memo is the one piece of KB state mutated on read paths, so it is
// guarded for concurrent use.
func (k *KB) typeDepth(t string) int {
	k.depthMu.Lock()
	d := k.typeDepthLocked(t)
	k.depthMu.Unlock()
	return d
}

func (k *KB) typeDepthLocked(t string) int {
	if d, ok := k.depth[t]; ok {
		return d
	}
	best := 0
	for _, p := range k.parents[t] {
		if d := k.typeDepthLocked(p) + 1; d > best {
			best = d
		}
	}
	k.depth[t] = best
	return best
}

// ancestorsOf returns the ancestor closure of a type including itself.
func (k *KB) ancestorsOf(t string) map[string]bool {
	out := make(map[string]bool)
	var walk func(x string)
	walk = func(x string) {
		if out[x] {
			return
		}
		out[x] = true
		for _, p := range k.parents[x] {
			walk(p)
		}
	}
	walk(t)
	return out
}

// LCA returns the deepest common ancestor of two types, if any.
func (k *KB) LCA(a, b string) (string, bool) {
	aa := k.ancestorsOf(a)
	var best string
	bestDepth := -1
	for c := range k.ancestorsOf(b) {
		if aa[c] {
			if d := k.typeDepth(c); d > bestDepth || (d == bestDepth && c < best) {
				best, bestDepth = c, d
			}
		}
	}
	return best, bestDepth >= 0
}

// TypeSimilarity is Wu-Palmer similarity over the hierarchy:
// 2*depth(lca) / (depth(a) + depth(b)), in [0, 1]. Identical types
// score 1; types with no common ancestor score 0.
func (k *KB) TypeSimilarity(a, b string) float64 {
	if a == b {
		return 1
	}
	lca, ok := k.LCA(a, b)
	if !ok {
		return 0
	}
	da, db := k.typeDepth(a), k.typeDepth(b)
	if da+db == 0 {
		return 0
	}
	return 2 * float64(k.typeDepth(lca)) / float64(da+db)
}

// ValueSimilarity is the best Wu-Palmer similarity over the two
// values' direct types, 0 when either value is uncovered.
func (k *KB) ValueSimilarity(a, b string) float64 {
	ta, tb := k.Types(a), k.Types(b)
	best := 0.0
	for _, x := range ta {
		for _, y := range tb {
			if s := k.TypeSimilarity(x, y); s > best {
				best = s
			}
		}
	}
	return best
}

// DominantType returns the most specific type that covers at least
// minFrac of the covered values in the list — the "column type" that
// semantic union search assigns — along with the coverage achieved.
func (k *KB) DominantType(values []string, minFrac float64) (string, float64, bool) {
	counts := make(map[string]int)
	covered := 0
	for _, v := range values {
		ts := k.AllTypes(v)
		if len(ts) == 0 {
			continue
		}
		covered++
		for _, t := range ts {
			counts[t]++
		}
	}
	if covered == 0 {
		return "", 0, false
	}
	var best string
	bestDepth, bestCount := -1, 0
	for t, c := range counts {
		frac := float64(c) / float64(covered)
		if frac < minFrac {
			continue
		}
		d := k.typeDepth(t)
		if d > bestDepth || (d == bestDepth && c > bestCount) ||
			(d == bestDepth && c == bestCount && t < best) {
			best, bestDepth, bestCount = t, d, c
		}
	}
	if bestDepth < 0 {
		return "", 0, false
	}
	return best, float64(bestCount) / float64(covered), true
}

// DominantPredicate returns the predicate asserted for the largest
// fraction of the given value pairs, with its support fraction.
func (k *KB) DominantPredicate(pairs [][2]string) (string, float64, bool) {
	counts := make(map[string]int)
	for _, p := range pairs {
		for _, pred := range k.Predicates(p[0], p[1]) {
			counts[pred]++
		}
	}
	if len(counts) == 0 || len(pairs) == 0 {
		return "", 0, false
	}
	var best string
	bestC := -1
	for p, c := range counts {
		if c > bestC || (c == bestC && p < best) {
			best, bestC = p, c
		}
	}
	return best, float64(bestC) / float64(len(pairs)), true
}
