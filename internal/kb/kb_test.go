package kb

import (
	"reflect"
	"testing"
)

// demo builds a small ontology:
//
//	thing -> place -> city
//	thing -> place -> country
//	thing -> person -> scientist
func demo() *KB {
	k := New()
	k.AddType("place", "thing")
	k.AddType("city", "place")
	k.AddType("country", "place")
	k.AddType("person", "thing")
	k.AddType("scientist", "person")
	k.AddEntity("Boston", "city")
	k.AddEntity("Paris", "city")
	k.AddEntity("France", "country")
	k.AddEntity("Curie", "scientist")
	k.AddFact("Paris", "capitalOf", "France")
	k.AddFact("Boston", "locatedIn", "USA")
	return k
}

func TestTypesAndAncestors(t *testing.T) {
	k := demo()
	if got := k.Types("boston"); !reflect.DeepEqual(got, []string{"city"}) {
		t.Errorf("Types = %v", got)
	}
	want := []string{"city", "place", "thing"}
	if got := k.AllTypes("  BOSTON "); !reflect.DeepEqual(got, want) {
		t.Errorf("AllTypes = %v, want %v", got, want)
	}
	if k.AllTypes("unknown") != nil {
		t.Error("uncovered value should have no types")
	}
	if !k.Has("paris") || k.Has("tokyo") {
		t.Error("Has wrong")
	}
}

func TestAddEntityDedup(t *testing.T) {
	k := New()
	k.AddEntity("x", "a", "a")
	k.AddEntity("x", "a", "b")
	if got := k.Types("x"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Types = %v", got)
	}
	k.AddEntity("", "a")
	if k.NumEntities() != 1 {
		t.Error("empty value should be ignored")
	}
}

func TestLCAAndSimilarity(t *testing.T) {
	k := demo()
	lca, ok := k.LCA("city", "country")
	if !ok || lca != "place" {
		t.Errorf("LCA = %q, %v", lca, ok)
	}
	lca, ok = k.LCA("city", "scientist")
	if !ok || lca != "thing" {
		t.Errorf("LCA(city, scientist) = %q", lca)
	}
	// Wu-Palmer: depth(place)=1, depth(city)=depth(country)=2.
	if s := k.TypeSimilarity("city", "country"); s != 0.5 {
		t.Errorf("TypeSimilarity(city,country) = %v, want 0.5", s)
	}
	if s := k.TypeSimilarity("city", "city"); s != 1 {
		t.Errorf("self similarity = %v", s)
	}
	if s := k.TypeSimilarity("city", "orphan"); s != 0 {
		t.Errorf("disconnected similarity = %v", s)
	}
	// Siblings are more similar than cousins across the root.
	if k.ValueSimilarity("boston", "france") <= k.ValueSimilarity("boston", "curie") {
		t.Error("city-country should beat city-scientist")
	}
	if k.ValueSimilarity("boston", "unknown") != 0 {
		t.Error("uncovered value similarity should be 0")
	}
}

func TestPredicates(t *testing.T) {
	k := demo()
	if got := k.Predicates("paris", "france"); !reflect.DeepEqual(got, []string{"capitalOf"}) {
		t.Errorf("Predicates = %v", got)
	}
	if k.Predicates("france", "paris") != nil {
		t.Error("relation should be directional")
	}
	k.AddFact("Paris", "capitalOf", "France") // duplicate
	if k.NumFacts() != 2 {
		t.Errorf("NumFacts = %d, want 2", k.NumFacts())
	}
	if k.PredicateCount("capitalOf") != 1 {
		t.Errorf("PredicateCount = %d", k.PredicateCount("capitalOf"))
	}
}

func TestCoverage(t *testing.T) {
	k := demo()
	c := k.Coverage([]string{"boston", "paris", "tokyo", "berlin"})
	if c != 0.5 {
		t.Errorf("Coverage = %v, want 0.5", c)
	}
	if k.Coverage(nil) != 0 {
		t.Error("empty coverage should be 0")
	}
}

func TestDominantType(t *testing.T) {
	k := demo()
	typ, frac, ok := k.DominantType([]string{"boston", "paris", "tokyo"}, 0.6)
	if !ok || typ != "city" || frac != 1 {
		t.Errorf("DominantType = %q, %v, %v", typ, frac, ok)
	}
	// Mixed cities and countries: most specific shared type is place.
	typ, _, ok = k.DominantType([]string{"boston", "france"}, 0.9)
	if !ok || typ != "place" {
		t.Errorf("mixed DominantType = %q", typ)
	}
	if _, _, ok := k.DominantType([]string{"nope"}, 0.5); ok {
		t.Error("uncovered values should have no dominant type")
	}
}

func TestDominantPredicate(t *testing.T) {
	k := demo()
	k.AddFact("Boston", "locatedIn", "Massachusetts")
	pred, frac, ok := k.DominantPredicate([][2]string{
		{"paris", "france"},
		{"boston", "massachusetts"},
		{"boston", "usa"},
	})
	if !ok || pred != "locatedIn" {
		t.Errorf("DominantPredicate = %q, %v", pred, ok)
	}
	if frac < 0.6 || frac > 0.7 {
		t.Errorf("support = %v, want 2/3", frac)
	}
	if _, _, ok := k.DominantPredicate(nil); ok {
		t.Error("no pairs should yield no predicate")
	}
}

func TestAddTypeIdempotent(t *testing.T) {
	k := New()
	k.AddType("a", "b")
	k.AddType("a", "b")
	if len(k.parents["a"]) != 1 {
		t.Error("duplicate AddType created duplicate edge")
	}
}

func TestDiamondHierarchy(t *testing.T) {
	// a -> b -> d, a -> c -> d: LCA(b, c) = a, and AllTypes handles
	// the diamond without duplication.
	k := New()
	k.AddType("b", "a")
	k.AddType("c", "a")
	k.AddType("d", "b")
	k.AddType("d", "c")
	k.AddEntity("x", "d")
	got := k.AllTypes("x")
	want := []string{"a", "b", "c", "d"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("AllTypes = %v, want %v", got, want)
	}
	lca, ok := k.LCA("b", "c")
	if !ok || lca != "a" {
		t.Errorf("LCA = %q", lca)
	}
}
