package kb

import (
	"sort"

	"tablehound/internal/snap"
)

// AppendSnapshot encodes the KB's assertions: the type hierarchy,
// entity typings, and relation facts, each in sorted key order. Slice
// order within an assertion (a child's parent list, a value's type
// list) is preserved verbatim; every read path either sorts its output
// or reduces by max, so only content matters, but preserving order
// keeps the loaded KB byte-comparable to the saved one.
func (k *KB) AppendSnapshot(e *snap.Encoder) {
	children := make([]string, 0, len(k.parents))
	for c := range k.parents {
		children = append(children, c)
	}
	sort.Strings(children)
	e.U32(uint32(len(children)))
	for _, c := range children {
		e.Str(c)
		e.Strs(k.parents[c])
	}

	values := make([]string, 0, len(k.entities))
	for v := range k.entities {
		values = append(values, v)
	}
	sort.Strings(values)
	e.U32(uint32(len(values)))
	for _, v := range values {
		e.Str(v)
		e.Strs(k.entities[v])
	}

	pairs := make([]pair, 0, len(k.rels))
	for p := range k.rels {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].s != pairs[j].s {
			return pairs[i].s < pairs[j].s
		}
		return pairs[i].o < pairs[j].o
	})
	e.U32(uint32(len(pairs)))
	for _, p := range pairs {
		e.Str(p.s)
		e.Str(p.o)
		preds := make([]string, 0, len(k.rels[p]))
		for pred := range k.rels[p] {
			preds = append(preds, pred)
		}
		sort.Strings(preds)
		e.Strs(preds)
	}
}

// DecodeSnapshot rebuilds a KB written by AppendSnapshot. The
// children index and predicate fact counts are derived from the
// stored assertions; the depth memo starts empty and repopulates
// lazily exactly as on a freshly built KB.
func DecodeSnapshot(d *snap.Decoder) (*KB, error) {
	k := New()
	numTypes := int(d.U32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	for i := 0; i < numTypes; i++ {
		child := d.Str()
		parents := d.Strs()
		if d.Err() != nil {
			return nil, d.Err()
		}
		k.parents[child] = parents
		for _, p := range parents {
			k.children[p] = append(k.children[p], child)
		}
	}
	numEntities := int(d.U32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	for i := 0; i < numEntities; i++ {
		v := d.Str()
		types := d.Strs()
		if d.Err() != nil {
			return nil, d.Err()
		}
		k.entities[v] = types
	}
	numPairs := int(d.U32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	for i := 0; i < numPairs; i++ {
		p := pair{s: d.Str(), o: d.Str()}
		preds := d.Strs()
		if d.Err() != nil {
			return nil, d.Err()
		}
		m := make(map[string]bool, len(preds))
		for _, pred := range preds {
			if !m[pred] {
				m[pred] = true
				k.relNames[pred]++
			}
		}
		k.rels[p] = m
	}
	return k, nil
}
