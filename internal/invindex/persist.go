package invindex

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// ErrCorruptSnapshot marks a snapshot whose structure is internally
// inconsistent (wrong section lengths, out-of-range ranks). Callers
// distinguish it from plain decode errors with errors.Is.
var ErrCorruptSnapshot = errors.New("invindex: corrupt snapshot")

// snapshot is the gob-encodable form of an Index. Postings are
// rebuilt on load from the stored sets — they are fully determined by
// them and roughly double the on-disk size if stored.
type snapshot struct {
	// IDBuilt records explicitly whether the index was built from
	// dictionary IDs (AddIDs) or strings (Add). It must not be
	// inferred from len(IDs): an ID-built index over all-empty sets
	// has zero tokens and would silently round-trip as string-built.
	IDBuilt bool
	Tokens  []string // rank order; string-built indexes
	IDs     []uint32 // rank order; dictionary-ID-built indexes
	DF      []int32
	Keys    []string
	Sets    [][]int32
}

// Save writes the index in binary form.
func (ix *Index) Save(w io.Writer) error {
	s := snapshot{
		DF:   ix.df,
		Keys: ix.keys,
		Sets: ix.sets,
	}
	if ix.idOf != nil {
		s.IDBuilt = true
		s.IDs = ix.idOf
	} else {
		s.Tokens = make([]string, len(ix.df))
		for tok, rank := range ix.tokenIDs {
			s.Tokens[rank] = tok
		}
	}
	return gob.NewEncoder(w).Encode(s)
}

// Load reads an index previously written by Save.
func Load(r io.Reader) (*Index, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("invindex: decode: %w", err)
	}
	// Snapshots written before the explicit flag carried only the IDs
	// slice; honor them.
	idBuilt := s.IDBuilt || len(s.IDs) > 0
	if len(s.Keys) != len(s.Sets) {
		return nil, fmt.Errorf("%w: %d keys vs %d sets", ErrCorruptSnapshot, len(s.Keys), len(s.Sets))
	}
	if idBuilt {
		if len(s.IDs) != len(s.DF) {
			return nil, fmt.Errorf("%w: %d IDs vs %d token frequencies", ErrCorruptSnapshot, len(s.IDs), len(s.DF))
		}
		if len(s.Tokens) != 0 {
			return nil, fmt.Errorf("%w: ID-built snapshot carries string tokens", ErrCorruptSnapshot)
		}
	} else if len(s.Tokens) != len(s.DF) {
		return nil, fmt.Errorf("%w: %d tokens vs %d token frequencies", ErrCorruptSnapshot, len(s.Tokens), len(s.DF))
	}
	ix := &Index{
		df:       s.DF,
		postings: make([][]Posting, len(s.DF)),
		sets:     s.Sets,
		keys:     s.Keys,
		keyToSet: make(map[string]int32, len(s.Keys)),
	}
	if idBuilt {
		if s.IDs == nil {
			// Preserve the "ID-built" marker even with zero tokens.
			s.IDs = []uint32{}
		}
		ix.idOf = s.IDs
		maxID := uint32(0)
		for _, id := range s.IDs {
			if id > maxID {
				maxID = id
			}
		}
		ix.rankOfID = make([]int32, maxID+1)
		for i := range ix.rankOfID {
			ix.rankOfID[i] = -1
		}
		for rank, id := range s.IDs {
			ix.rankOfID[id] = int32(rank)
		}
	} else {
		ix.tokenIDs = make(map[string]int32, len(s.Tokens))
		for rank, tok := range s.Tokens {
			ix.tokenIDs[tok] = int32(rank)
		}
	}
	for sid, set := range s.Sets {
		ix.keyToSet[s.Keys[sid]] = int32(sid)
		for pos, rank := range set {
			if rank < 0 || int(rank) >= len(ix.postings) {
				return nil, fmt.Errorf("%w: rank %d out of range in set %d", ErrCorruptSnapshot, rank, sid)
			}
			ix.postings[rank] = append(ix.postings[rank], Posting{Set: int32(sid), Pos: int32(pos)})
		}
	}
	return ix, nil
}
