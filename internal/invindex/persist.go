package invindex

import (
	"fmt"
	"io"

	"tablehound/internal/snap"
)

// ErrCorruptSnapshot marks a snapshot whose bytes or structure are
// invalid: truncation, checksum mismatch, trailing garbage, wrong
// section lengths, or out-of-range ranks. It aliases the shared
// snapshot-format sentinel so callers can match either.
var ErrCorruptSnapshot = snap.ErrCorrupt

// Standalone snapshot framing (Save/Load). When the index is embedded
// in a larger snapshot (core.Save), only AppendSnapshot/DecodeSnapshot
// run and the container owns the framing.
const (
	saveMagic   uint32 = 0x58494854 // "THIX"
	saveVersion uint16 = 1
	saveSection uint16 = 1
)

// AppendSnapshot encodes the index payload. Postings are rebuilt on
// decode from the stored sets — they are fully determined by them and
// roughly double the on-disk size if stored.
func (ix *Index) AppendSnapshot(e *snap.Encoder) {
	// The built-from-IDs flag is explicit: an ID-built index over
	// all-empty sets has zero tokens and would otherwise silently
	// round-trip as string-built.
	idBuilt := ix.idOf != nil
	e.Bool(idBuilt)
	if idBuilt {
		e.U32s(ix.idOf)
	} else {
		tokens := make([]string, len(ix.df))
		for tok, rank := range ix.tokenIDs {
			tokens[rank] = tok
		}
		e.Strs(tokens)
	}
	e.I32s(ix.df)
	e.Strs(ix.keys)
	e.U32(uint32(len(ix.sets)))
	for _, set := range ix.sets {
		e.I32s(set)
	}
}

// DecodeSnapshot rebuilds an index written by AppendSnapshot,
// validating every structural invariant the query paths rely on.
func DecodeSnapshot(d *snap.Decoder) (*Index, error) {
	idBuilt := d.Bool()
	var ids []uint32
	var tokens []string
	if idBuilt {
		ids = d.U32s()
	} else {
		tokens = d.Strs()
	}
	df := d.I32s()
	keys := d.Strs()
	numSets := int(d.U32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	if len(keys) != numSets {
		return nil, fmt.Errorf("%w: %d keys vs %d sets", ErrCorruptSnapshot, len(keys), numSets)
	}
	if idBuilt {
		if len(ids) != len(df) {
			return nil, fmt.Errorf("%w: %d IDs vs %d token frequencies", ErrCorruptSnapshot, len(ids), len(df))
		}
	} else if len(tokens) != len(df) {
		return nil, fmt.Errorf("%w: %d tokens vs %d token frequencies", ErrCorruptSnapshot, len(tokens), len(df))
	}
	ix := &Index{
		df:       df,
		postings: make([][]Posting, len(df)),
		sets:     make([][]int32, numSets),
		keys:     keys,
		keyToSet: make(map[string]int32, numSets),
	}
	if idBuilt {
		if ids == nil {
			// Preserve the "ID-built" marker even with zero tokens.
			ids = []uint32{}
		}
		ix.idOf = ids
		maxID := uint32(0)
		for _, id := range ids {
			if id > maxID {
				maxID = id
			}
		}
		ix.rankOfID = make([]int32, maxID+1)
		for i := range ix.rankOfID {
			ix.rankOfID[i] = -1
		}
		for rank, id := range ids {
			ix.rankOfID[id] = int32(rank)
		}
	} else {
		ix.tokenIDs = make(map[string]int32, len(tokens))
		for rank, tok := range tokens {
			ix.tokenIDs[tok] = int32(rank)
		}
	}
	for sid := 0; sid < numSets; sid++ {
		set := d.I32s()
		if d.Err() != nil {
			return nil, d.Err()
		}
		ix.sets[sid] = set
		if _, dup := ix.keyToSet[keys[sid]]; dup {
			return nil, fmt.Errorf("%w: duplicate set key %q", ErrCorruptSnapshot, keys[sid])
		}
		ix.keyToSet[keys[sid]] = int32(sid)
		for pos, rank := range set {
			if rank < 0 || int(rank) >= len(ix.postings) {
				return nil, fmt.Errorf("%w: rank %d out of range in set %d", ErrCorruptSnapshot, rank, sid)
			}
			ix.postings[rank] = append(ix.postings[rank], Posting{Set: int32(sid), Pos: int32(pos)})
		}
	}
	return ix, nil
}

// Save writes the index in the framed binary snapshot form: header,
// one checksummed section, nothing after it.
func (ix *Index) Save(w io.Writer) error {
	if err := snap.WriteHeader(w, saveMagic, saveVersion, 0); err != nil {
		return err
	}
	return snap.NewWriter(w).Section(saveSection, ix.AppendSnapshot)
}

// Load reads an index previously written by Save. Truncated input,
// checksum mismatches, and trailing garbage after the final section
// all return ErrCorruptSnapshot.
func Load(r io.Reader) (*Index, error) {
	version, _, err := snap.ReadHeader(r, saveMagic)
	if err != nil {
		return nil, err
	}
	if version != saveVersion {
		return nil, fmt.Errorf("%w: unsupported snapshot version %d", ErrCorruptSnapshot, version)
	}
	sr := snap.NewReader(r)
	var ix *Index
	if err := sr.Section(saveSection, func(d *snap.Decoder) error {
		var derr error
		ix, derr = DecodeSnapshot(d)
		return derr
	}); err != nil {
		return nil, err
	}
	if err := sr.Close(); err != nil {
		return nil, err
	}
	return ix, nil
}
