package invindex

import (
	"encoding/gob"
	"fmt"
	"io"
)

// snapshot is the gob-encodable form of an Index. Postings are
// rebuilt on load from the stored sets — they are fully determined by
// them and roughly double the on-disk size if stored.
type snapshot struct {
	Tokens []string // rank order; string-built indexes
	IDs    []uint32 // rank order; dictionary-ID-built indexes
	DF     []int32
	Keys   []string
	Sets   [][]int32
}

// Save writes the index in binary form.
func (ix *Index) Save(w io.Writer) error {
	s := snapshot{
		DF:   ix.df,
		Keys: ix.keys,
		Sets: ix.sets,
	}
	if ix.idOf != nil {
		s.IDs = ix.idOf
	} else {
		s.Tokens = make([]string, len(ix.df))
		for tok, rank := range ix.tokenIDs {
			s.Tokens[rank] = tok
		}
	}
	return gob.NewEncoder(w).Encode(s)
}

// Load reads an index previously written by Save.
func Load(r io.Reader) (*Index, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("invindex: decode: %w", err)
	}
	idBuilt := len(s.IDs) > 0
	if idBuilt {
		if len(s.IDs) != len(s.DF) || len(s.Keys) != len(s.Sets) {
			return nil, fmt.Errorf("invindex: corrupt snapshot")
		}
	} else if len(s.Tokens) != len(s.DF) || len(s.Keys) != len(s.Sets) {
		return nil, fmt.Errorf("invindex: corrupt snapshot")
	}
	ix := &Index{
		df:       s.DF,
		postings: make([][]Posting, len(s.DF)),
		sets:     s.Sets,
		keys:     s.Keys,
		keyToSet: make(map[string]int32, len(s.Keys)),
	}
	if idBuilt {
		ix.idOf = s.IDs
		maxID := uint32(0)
		for _, id := range s.IDs {
			if id > maxID {
				maxID = id
			}
		}
		ix.rankOfID = make([]int32, maxID+1)
		for i := range ix.rankOfID {
			ix.rankOfID[i] = -1
		}
		for rank, id := range s.IDs {
			ix.rankOfID[id] = int32(rank)
		}
	} else {
		ix.tokenIDs = make(map[string]int32, len(s.Tokens))
		for rank, tok := range s.Tokens {
			ix.tokenIDs[tok] = int32(rank)
		}
	}
	for sid, set := range s.Sets {
		ix.keyToSet[s.Keys[sid]] = int32(sid)
		for pos, rank := range set {
			if rank < 0 || int(rank) >= len(ix.postings) {
				return nil, fmt.Errorf("invindex: corrupt snapshot: rank %d out of range", rank)
			}
			ix.postings[rank] = append(ix.postings[rank], Posting{Set: int32(sid), Pos: int32(pos)})
		}
	}
	return ix, nil
}
