package invindex

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := NewBuilder()
	for i := 0; i < 80; i++ {
		n := 1 + rng.Intn(25)
		vs := make([]string, n)
		for j := range vs {
			vs[j] = fmt.Sprintf("tok%d", rng.Intn(120))
		}
		if err := b.Add(fmt.Sprintf("s%02d", i), vs); err != nil {
			t.Fatal(err)
		}
	}
	orig, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSets() != orig.NumSets() || back.NumTokens() != orig.NumTokens() {
		t.Fatalf("dims changed: %d/%d vs %d/%d",
			back.NumSets(), back.NumTokens(), orig.NumSets(), orig.NumTokens())
	}
	// Every structural accessor must agree.
	for sid := int32(0); sid < int32(orig.NumSets()); sid++ {
		if back.Key(sid) != orig.Key(sid) {
			t.Fatalf("key %d changed", sid)
		}
		if !reflect.DeepEqual(back.Set(sid), orig.Set(sid)) {
			t.Fatalf("set %d changed", sid)
		}
	}
	for r := int32(0); r < int32(orig.NumTokens()); r++ {
		if back.DF(r) != orig.DF(r) {
			t.Fatalf("df %d changed", r)
		}
		if !reflect.DeepEqual(back.Postings(r), orig.Postings(r)) {
			t.Fatalf("postings %d changed", r)
		}
	}
	// Query behavior preserved.
	q := []string{"tok1", "tok2", "tok3", "nope"}
	if !reflect.DeepEqual(back.QueryRanks(q), orig.QueryRanks(q)) {
		t.Error("QueryRanks changed after reload")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage should fail to load")
	}
}

// TestSaveLoadRoundTripIDs is the ID-built twin of the round trip
// above: an index built from dictionary IDs (AddIDs, the join
// engine's path) must reload with identical structure and identical
// QueryRanksIDs behavior.
func TestSaveLoadRoundTripIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := NewBuilder()
	for i := 0; i < 80; i++ {
		n := 1 + rng.Intn(25)
		ids := make([]uint32, n)
		for j := range ids {
			ids[j] = uint32(rng.Intn(150))
		}
		if err := b.AddIDs(fmt.Sprintf("s%02d", i), ids); err != nil {
			t.Fatal(err)
		}
	}
	orig, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSets() != orig.NumSets() || back.NumTokens() != orig.NumTokens() {
		t.Fatalf("dims changed: %d/%d vs %d/%d",
			back.NumSets(), back.NumTokens(), orig.NumSets(), orig.NumTokens())
	}
	for sid := int32(0); sid < int32(orig.NumSets()); sid++ {
		if back.Key(sid) != orig.Key(sid) {
			t.Fatalf("key %d changed", sid)
		}
		if !reflect.DeepEqual(back.Set(sid), orig.Set(sid)) {
			t.Fatalf("set %d changed", sid)
		}
	}
	for r := int32(0); r < int32(orig.NumTokens()); r++ {
		if back.DF(r) != orig.DF(r) {
			t.Fatalf("df %d changed", r)
		}
		if !reflect.DeepEqual(back.Postings(r), orig.Postings(r)) {
			t.Fatalf("postings %d changed", r)
		}
	}
	// ID query behavior preserved, including unknown and ephemeral
	// (past-the-table) IDs.
	q := []uint32{1, 2, 3, 149, 5000}
	if got, want := back.QueryRanksIDs(q), orig.QueryRanksIDs(q); !reflect.DeepEqual(got, want) {
		t.Errorf("QueryRanksIDs changed after reload: %v vs %v", got, want)
	}
}

// TestSaveLoadEmptyIDIndexStaysIDBuilt guards the explicit IDBuilt
// flag: an ID-built index whose sets are all empty has zero tokens,
// and inferring "ID-built" from a non-empty ID table would silently
// reload it as a string-built index.
func TestSaveLoadEmptyIDIndexStaysIDBuilt(t *testing.T) {
	b := NewBuilder()
	if err := b.AddIDs("empty-a", nil); err != nil {
		t.Fatal(err)
	}
	if err := b.AddIDs("empty-b", []uint32{}); err != nil {
		t.Fatal(err)
	}
	orig, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.idOf == nil || back.tokenIDs != nil {
		t.Error("empty ID-built index reloaded as string-built")
	}
	if got := back.QueryRanksIDs([]uint32{0, 1, 2}); len(got) != 0 {
		t.Errorf("QueryRanksIDs on empty index = %v", got)
	}
}

// TestLoadRejectsInconsistentSnapshots checks the typed corruption
// error for structurally broken snapshots.
func TestLoadRejectsInconsistentSnapshots(t *testing.T) {
	cases := []struct {
		name string
		s    snapshot
	}{
		{"keys vs sets", snapshot{Tokens: []string{"a"}, DF: []int32{1}, Keys: []string{"k"}, Sets: nil}},
		{"tokens vs df", snapshot{Tokens: []string{"a", "b"}, DF: []int32{1}}},
		{"ids vs df", snapshot{IDBuilt: true, IDs: []uint32{1, 2}, DF: []int32{1}}},
		{"id-built with tokens", snapshot{IDBuilt: true, IDs: []uint32{1}, DF: []int32{1}, Tokens: []string{"a"}}},
		{"rank out of range", snapshot{
			Tokens: []string{"a"}, DF: []int32{1},
			Keys: []string{"k"}, Sets: [][]int32{{7}},
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(c.s); err != nil {
				t.Fatal(err)
			}
			_, err := Load(&buf)
			if err == nil {
				t.Fatal("inconsistent snapshot loaded without error")
			}
			if !errors.Is(err, ErrCorruptSnapshot) {
				t.Errorf("err = %v, does not wrap ErrCorruptSnapshot", err)
			}
		})
	}
}
