package invindex

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"tablehound/internal/snap"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := NewBuilder()
	for i := 0; i < 80; i++ {
		n := 1 + rng.Intn(25)
		vs := make([]string, n)
		for j := range vs {
			vs[j] = fmt.Sprintf("tok%d", rng.Intn(120))
		}
		if err := b.Add(fmt.Sprintf("s%02d", i), vs); err != nil {
			t.Fatal(err)
		}
	}
	orig, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSets() != orig.NumSets() || back.NumTokens() != orig.NumTokens() {
		t.Fatalf("dims changed: %d/%d vs %d/%d",
			back.NumSets(), back.NumTokens(), orig.NumSets(), orig.NumTokens())
	}
	// Every structural accessor must agree.
	for sid := int32(0); sid < int32(orig.NumSets()); sid++ {
		if back.Key(sid) != orig.Key(sid) {
			t.Fatalf("key %d changed", sid)
		}
		if !reflect.DeepEqual(back.Set(sid), orig.Set(sid)) {
			t.Fatalf("set %d changed", sid)
		}
	}
	for r := int32(0); r < int32(orig.NumTokens()); r++ {
		if back.DF(r) != orig.DF(r) {
			t.Fatalf("df %d changed", r)
		}
		if !reflect.DeepEqual(back.Postings(r), orig.Postings(r)) {
			t.Fatalf("postings %d changed", r)
		}
	}
	// Query behavior preserved.
	q := []string{"tok1", "tok2", "tok3", "nope"}
	if !reflect.DeepEqual(back.QueryRanks(q), orig.QueryRanks(q)) {
		t.Error("QueryRanks changed after reload")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage should fail to load")
	}
}

// TestSaveLoadRoundTripIDs is the ID-built twin of the round trip
// above: an index built from dictionary IDs (AddIDs, the join
// engine's path) must reload with identical structure and identical
// QueryRanksIDs behavior.
func TestSaveLoadRoundTripIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := NewBuilder()
	for i := 0; i < 80; i++ {
		n := 1 + rng.Intn(25)
		ids := make([]uint32, n)
		for j := range ids {
			ids[j] = uint32(rng.Intn(150))
		}
		if err := b.AddIDs(fmt.Sprintf("s%02d", i), ids); err != nil {
			t.Fatal(err)
		}
	}
	orig, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSets() != orig.NumSets() || back.NumTokens() != orig.NumTokens() {
		t.Fatalf("dims changed: %d/%d vs %d/%d",
			back.NumSets(), back.NumTokens(), orig.NumSets(), orig.NumTokens())
	}
	for sid := int32(0); sid < int32(orig.NumSets()); sid++ {
		if back.Key(sid) != orig.Key(sid) {
			t.Fatalf("key %d changed", sid)
		}
		if !reflect.DeepEqual(back.Set(sid), orig.Set(sid)) {
			t.Fatalf("set %d changed", sid)
		}
	}
	for r := int32(0); r < int32(orig.NumTokens()); r++ {
		if back.DF(r) != orig.DF(r) {
			t.Fatalf("df %d changed", r)
		}
		if !reflect.DeepEqual(back.Postings(r), orig.Postings(r)) {
			t.Fatalf("postings %d changed", r)
		}
	}
	// ID query behavior preserved, including unknown and ephemeral
	// (past-the-table) IDs.
	q := []uint32{1, 2, 3, 149, 5000}
	if got, want := back.QueryRanksIDs(q), orig.QueryRanksIDs(q); !reflect.DeepEqual(got, want) {
		t.Errorf("QueryRanksIDs changed after reload: %v vs %v", got, want)
	}
}

// TestSaveLoadEmptyIDIndexStaysIDBuilt guards the explicit IDBuilt
// flag: an ID-built index whose sets are all empty has zero tokens,
// and inferring "ID-built" from a non-empty ID table would silently
// reload it as a string-built index.
func TestSaveLoadEmptyIDIndexStaysIDBuilt(t *testing.T) {
	b := NewBuilder()
	if err := b.AddIDs("empty-a", nil); err != nil {
		t.Fatal(err)
	}
	if err := b.AddIDs("empty-b", []uint32{}); err != nil {
		t.Fatal(err)
	}
	orig, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.idOf == nil || back.tokenIDs != nil {
		t.Error("empty ID-built index reloaded as string-built")
	}
	if got := back.QueryRanksIDs([]uint32{0, 1, 2}); len(got) != 0 {
		t.Errorf("QueryRanksIDs on empty index = %v", got)
	}
}

// frameSnapshot wraps a hand-built payload in valid framing (header,
// section, checksum), so the structural validators — not the
// checksums — are what reject it.
func frameSnapshot(t *testing.T, encode func(*snap.Encoder)) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := snap.WriteHeader(&buf, saveMagic, saveVersion, 0); err != nil {
		t.Fatal(err)
	}
	if err := snap.NewWriter(&buf).Section(saveSection, encode); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadRejectsInconsistentSnapshots checks the typed corruption
// error for snapshots whose framing is intact but whose structure is
// internally inconsistent.
func TestLoadRejectsInconsistentSnapshots(t *testing.T) {
	cases := []struct {
		name   string
		encode func(*snap.Encoder)
	}{
		{"keys vs sets", func(e *snap.Encoder) {
			e.Bool(false)
			e.Strs([]string{"a"}) // tokens
			e.I32s([]int32{1})    // df
			e.Strs([]string{"k"}) // keys
			e.U32(0)              // sets: none, but one key
		}},
		{"tokens vs df", func(e *snap.Encoder) {
			e.Bool(false)
			e.Strs([]string{"a", "b"})
			e.I32s([]int32{1})
			e.Strs(nil)
			e.U32(0)
		}},
		{"ids vs df", func(e *snap.Encoder) {
			e.Bool(true)
			e.U32s([]uint32{1, 2})
			e.I32s([]int32{1})
			e.Strs(nil)
			e.U32(0)
		}},
		{"rank out of range", func(e *snap.Encoder) {
			e.Bool(false)
			e.Strs([]string{"a"})
			e.I32s([]int32{1})
			e.Strs([]string{"k"})
			e.U32(1)
			e.I32s([]int32{7})
		}},
		{"duplicate key", func(e *snap.Encoder) {
			e.Bool(false)
			e.Strs([]string{"a"})
			e.I32s([]int32{2})
			e.Strs([]string{"k", "k"})
			e.U32(2)
			e.I32s([]int32{0})
			e.I32s([]int32{0})
		}},
		{"payload too short", func(e *snap.Encoder) {
			e.Bool(false)
			e.Strs([]string{"a"})
		}},
		{"trailing payload bytes", func(e *snap.Encoder) {
			e.Bool(false)
			e.Strs(nil)
			e.I32s(nil)
			e.Strs([]string{"k"})
			e.U32(1)
			e.I32s(nil)
			e.U8(0xff) // one byte the decoder never consumes
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Load(bytes.NewReader(frameSnapshot(t, c.encode)))
			if err == nil {
				t.Fatal("inconsistent snapshot loaded without error")
			}
			if !errors.Is(err, ErrCorruptSnapshot) {
				t.Errorf("err = %v, does not wrap ErrCorruptSnapshot", err)
			}
		})
	}
}

// validSnapshotBytes returns the saved form of a small real index.
func validSnapshotBytes(t *testing.T) []byte {
	t.Helper()
	b := NewBuilder()
	for i := 0; i < 10; i++ {
		if err := b.AddIDs(fmt.Sprintf("s%d", i), []uint32{uint32(i), uint32(i + 1), 40}); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadRejectsTruncation cuts a valid snapshot at every byte
// offset: no proper prefix may load.
func TestLoadRejectsTruncation(t *testing.T) {
	data := validSnapshotBytes(t)
	for n := 0; n < len(data); n++ {
		_, err := Load(bytes.NewReader(data[:n]))
		if err == nil {
			t.Fatalf("truncated snapshot (%d/%d bytes) loaded", n, len(data))
		}
		if !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("truncation at %d: err = %v, want ErrCorruptSnapshot", n, err)
		}
	}
}

// TestLoadRejectsTrailingGarbage appends bytes after the final
// section; the old gob format accepted any parseable prefix.
func TestLoadRejectsTrailingGarbage(t *testing.T) {
	data := append(validSnapshotBytes(t), 'x')
	_, err := Load(bytes.NewReader(data))
	if !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("trailing garbage: err = %v, want ErrCorruptSnapshot", err)
	}
}

// TestLoadRejectsBitFlips flips one byte at every offset past the
// header; the section checksum must catch each one.
func TestLoadRejectsBitFlips(t *testing.T) {
	data := validSnapshotBytes(t)
	for i := 8; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x20
		if _, err := Load(bytes.NewReader(mut)); err == nil {
			t.Fatalf("bit flip at offset %d loaded", i)
		}
	}
}
