package invindex

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := NewBuilder()
	for i := 0; i < 80; i++ {
		n := 1 + rng.Intn(25)
		vs := make([]string, n)
		for j := range vs {
			vs[j] = fmt.Sprintf("tok%d", rng.Intn(120))
		}
		if err := b.Add(fmt.Sprintf("s%02d", i), vs); err != nil {
			t.Fatal(err)
		}
	}
	orig, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSets() != orig.NumSets() || back.NumTokens() != orig.NumTokens() {
		t.Fatalf("dims changed: %d/%d vs %d/%d",
			back.NumSets(), back.NumTokens(), orig.NumSets(), orig.NumTokens())
	}
	// Every structural accessor must agree.
	for sid := int32(0); sid < int32(orig.NumSets()); sid++ {
		if back.Key(sid) != orig.Key(sid) {
			t.Fatalf("key %d changed", sid)
		}
		if !reflect.DeepEqual(back.Set(sid), orig.Set(sid)) {
			t.Fatalf("set %d changed", sid)
		}
	}
	for r := int32(0); r < int32(orig.NumTokens()); r++ {
		if back.DF(r) != orig.DF(r) {
			t.Fatalf("df %d changed", r)
		}
		if !reflect.DeepEqual(back.Postings(r), orig.Postings(r)) {
			t.Fatalf("postings %d changed", r)
		}
	}
	// Query behavior preserved.
	q := []string{"tok1", "tok2", "tok3", "nope"}
	if !reflect.DeepEqual(back.QueryRanks(q), orig.QueryRanks(q)) {
		t.Error("QueryRanks changed after reload")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage should fail to load")
	}
}
