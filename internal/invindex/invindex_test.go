package invindex

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func build(t *testing.T, sets map[string][]string) *Index {
	t.Helper()
	b := NewBuilder()
	// Deterministic insertion order.
	keys := make([]string, 0, len(sets))
	for k := range sets {
		keys = append(keys, k)
	}
	// Sort for determinism.
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			if keys[j] < keys[i] {
				keys[i], keys[j] = keys[j], keys[i]
			}
		}
	}
	for _, k := range keys {
		if err := b.Add(k, sets[k]); err != nil {
			t.Fatal(err)
		}
	}
	ix, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestRanksOrderedByFrequency(t *testing.T) {
	ix := build(t, map[string][]string{
		"s1": {"common", "rare1"},
		"s2": {"common", "rare2"},
		"s3": {"common"},
	})
	rCommon, _ := ix.TokenRank("common")
	rRare, _ := ix.TokenRank("rare1")
	if ix.DF(rCommon) != 3 || ix.DF(rRare) != 1 {
		t.Errorf("df wrong: common=%d rare=%d", ix.DF(rCommon), ix.DF(rRare))
	}
	if rRare > rCommon {
		t.Error("rare token should rank before common token")
	}
}

func TestSetsSortedAndPositionsConsistent(t *testing.T) {
	ix := build(t, map[string][]string{
		"s1": {"a", "b", "c"},
		"s2": {"b", "c"},
		"s3": {"c"},
	})
	for sid := int32(0); sid < int32(ix.NumSets()); sid++ {
		set := ix.Set(sid)
		for i := 1; i < len(set); i++ {
			if set[i-1] >= set[i] {
				t.Fatalf("set %d not strictly sorted: %v", sid, set)
			}
		}
	}
	// Each posting's Pos must point at the token within the set.
	for r := int32(0); r < int32(ix.NumTokens()); r++ {
		for _, p := range ix.Postings(r) {
			if ix.Set(p.Set)[p.Pos] != r {
				t.Fatalf("posting pos wrong for rank %d", r)
			}
		}
	}
}

func TestDuplicateValuesDeduped(t *testing.T) {
	ix := build(t, map[string][]string{"s1": {"a", "a", "b", ""}})
	id, ok := ix.SetID("s1")
	if !ok {
		t.Fatal("missing set")
	}
	if ix.SetSize(id) != 2 {
		t.Errorf("SetSize = %d, want 2 (dedup + drop empty)", ix.SetSize(id))
	}
}

func TestDuplicateKeyRejected(t *testing.T) {
	b := NewBuilder()
	b.Add("k", []string{"a"})
	if err := b.Add("k", []string{"b"}); err == nil {
		t.Error("duplicate key should fail")
	}
	if b.Len() != 1 {
		t.Errorf("Len = %d", b.Len())
	}
}

func TestEmptyBuildFails(t *testing.T) {
	if _, err := NewBuilder().Build(); err == nil {
		t.Error("empty Build should fail")
	}
}

func TestQueryRanks(t *testing.T) {
	ix := build(t, map[string][]string{
		"s1": {"x", "y"},
		"s2": {"y"},
	})
	ranks := ix.QueryRanks([]string{"y", "unknown", "x", "x"})
	if len(ranks) != 2 {
		t.Fatalf("ranks = %v", ranks)
	}
	if ranks[0] >= ranks[1] {
		t.Error("ranks not sorted")
	}
}

func TestOverlap(t *testing.T) {
	a := []int32{1, 3, 5, 7}
	b := []int32{3, 4, 5, 8}
	if o := Overlap(a, b); o != 2 {
		t.Errorf("Overlap = %d, want 2", o)
	}
	if o := OverlapFrom(a, 2, b, 2); o != 1 {
		t.Errorf("OverlapFrom = %d, want 1", o)
	}
	if Overlap(nil, b) != 0 {
		t.Error("nil overlap should be 0")
	}
}

func TestOverlapMatchesNaive(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a := uniqueSorted(xs)
		b := uniqueSorted(ys)
		naive := 0
		for _, x := range a {
			for _, y := range b {
				if x == y {
					naive++
				}
			}
		}
		return Overlap(a, b) == naive
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func uniqueSorted(xs []uint8) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, x := range xs {
		if !seen[int32(x)] {
			seen[int32(x)] = true
			out = append(out, int32(x))
		}
	}
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

func TestPostingListsSortedBySet(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sets := make(map[string][]string)
	for i := 0; i < 50; i++ {
		n := 1 + rng.Intn(20)
		vs := make([]string, n)
		for j := range vs {
			vs[j] = fmt.Sprintf("tok%d", rng.Intn(40))
		}
		sets[fmt.Sprintf("s%02d", i)] = vs
	}
	ix := build(t, sets)
	for r := int32(0); r < int32(ix.NumTokens()); r++ {
		pl := ix.Postings(r)
		for i := 1; i < len(pl); i++ {
			if pl[i-1].Set >= pl[i].Set {
				t.Fatalf("posting list %d not sorted by set", r)
			}
		}
	}
}

func TestKeyRoundTrip(t *testing.T) {
	ix := build(t, map[string][]string{"alpha": {"a"}, "beta": {"b"}})
	got := map[string]bool{}
	for sid := int32(0); sid < int32(ix.NumSets()); sid++ {
		got[ix.Key(sid)] = true
		id, ok := ix.SetID(ix.Key(sid))
		if !ok || id != sid {
			t.Errorf("SetID(Key(%d)) = %d,%v", sid, id, ok)
		}
	}
	if !reflect.DeepEqual(got, map[string]bool{"alpha": true, "beta": true}) {
		t.Errorf("keys = %v", got)
	}
}
