// Package invindex implements the frequency-ordered inverted index
// over value sets that exact set-overlap search (JOSIE), keyword
// search, and multi-attribute join filtering build on.
//
// Tokens are globally ranked by ascending document frequency and each
// set stores its tokens in rank order, so rare (most selective) tokens
// come first. Posting entries record the token's position within the
// owning set, which yields the tight overlap upper bounds JOSIE uses.
package invindex

import (
	"errors"
	"fmt"
	"sort"
)

// Posting is one entry in a token's posting list.
type Posting struct {
	Set int32 // set ID
	Pos int32 // position of the token within the set's rank-ordered tokens
}

// Index is a frozen inverted index over string sets or over
// dictionary-ID sets. Build with a Builder; a frozen Index is safe
// for concurrent reads.
//
// Tokens may be strings (Add) or pre-interned dictionary IDs
// (AddIDs). The two forms behave identically because a value
// dictionary assigns IDs in lexicographic value order, so the
// (df, token) ranking tie-break yields the same rank permutation
// either way.
type Index struct {
	tokenIDs map[string]int32 // token -> rank; string-built indexes only
	idOf     []uint32         // rank -> dictionary ID; ID-built indexes only
	rankOfID []int32          // dictionary ID -> rank, -1 absent; ID-built only
	df       []int32          // rank -> document frequency
	postings [][]Posting      // rank -> posting list sorted by set ID
	sets     [][]int32        // set ID -> rank-ordered token ranks
	keys     []string         // set ID -> external key
	keyToSet map[string]int32
}

// Builder accumulates sets before freezing them into an Index. A
// Builder is either string-staged (Add) or ID-staged (AddIDs); mixing
// the two is an error.
type Builder struct {
	keys     []string
	values   [][]string
	idValues [][]uint32
	seen     map[string]bool
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{seen: make(map[string]bool)}
}

// Add stages a set under a unique key. Values are deduplicated; empty
// strings are ignored.
func (b *Builder) Add(key string, values []string) error {
	if b.idValues != nil {
		return fmt.Errorf("invindex: Add after AddIDs on the same builder")
	}
	if b.seen[key] {
		return fmt.Errorf("invindex: duplicate key %q", key)
	}
	b.seen[key] = true
	b.keys = append(b.keys, key)
	dedup := make(map[string]bool, len(values))
	vs := make([]string, 0, len(values))
	for _, v := range values {
		if v != "" && !dedup[v] {
			dedup[v] = true
			vs = append(vs, v)
		}
	}
	b.values = append(b.values, vs)
	return nil
}

// AddIDs stages a set of pre-interned dictionary IDs under a unique
// key. IDs are deduplicated; the slice is copied.
func (b *Builder) AddIDs(key string, ids []uint32) error {
	if b.values != nil {
		return fmt.Errorf("invindex: AddIDs after Add on the same builder")
	}
	if b.seen[key] {
		return fmt.Errorf("invindex: duplicate key %q", key)
	}
	if b.seen == nil {
		b.seen = make(map[string]bool)
	}
	b.seen[key] = true
	b.keys = append(b.keys, key)
	dedup := make(map[uint32]bool, len(ids))
	vs := make([]uint32, 0, len(ids))
	for _, id := range ids {
		if !dedup[id] {
			dedup[id] = true
			vs = append(vs, id)
		}
	}
	b.idValues = append(b.idValues, vs)
	return nil
}

// Len returns the number of staged sets.
func (b *Builder) Len() int { return len(b.keys) }

// Build freezes the staged sets into an Index.
func (b *Builder) Build() (*Index, error) {
	if len(b.keys) == 0 {
		return nil, errors.New("invindex: no sets added")
	}
	if b.idValues != nil {
		return b.buildIDs()
	}
	// Document frequency per token.
	df := make(map[string]int32)
	for _, vs := range b.values {
		for _, v := range vs {
			df[v]++
		}
	}
	// Rank tokens by ascending df, ties by token for determinism.
	tokens := make([]string, 0, len(df))
	for t := range df {
		tokens = append(tokens, t)
	}
	sort.Slice(tokens, func(i, j int) bool {
		if df[tokens[i]] != df[tokens[j]] {
			return df[tokens[i]] < df[tokens[j]]
		}
		return tokens[i] < tokens[j]
	})
	ix := &Index{
		tokenIDs: make(map[string]int32, len(tokens)),
		df:       make([]int32, len(tokens)),
		postings: make([][]Posting, len(tokens)),
		sets:     make([][]int32, len(b.keys)),
		keys:     b.keys,
		keyToSet: make(map[string]int32, len(b.keys)),
	}
	for rank, t := range tokens {
		ix.tokenIDs[t] = int32(rank)
		ix.df[rank] = df[t]
	}
	for sid, vs := range b.values {
		ranks := make([]int32, len(vs))
		for i, v := range vs {
			ranks[i] = ix.tokenIDs[v]
		}
		sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
		ix.sets[sid] = ranks
		ix.keyToSet[b.keys[sid]] = int32(sid)
		for pos, r := range ranks {
			ix.postings[r] = append(ix.postings[r], Posting{Set: int32(sid), Pos: int32(pos)})
		}
	}
	return ix, nil
}

// buildIDs freezes ID-staged sets. The token ranking ties on the
// dictionary ID, which — because dictionaries assign IDs in
// lexicographic value order — is the same order the string path's
// token tie-break produces.
func (b *Builder) buildIDs() (*Index, error) {
	maxID := uint32(0)
	for _, vs := range b.idValues {
		for _, id := range vs {
			if id > maxID {
				maxID = id
			}
		}
	}
	df := make([]int32, maxID+1)
	for _, vs := range b.idValues {
		for _, id := range vs {
			df[id]++
		}
	}
	tokens := make([]uint32, 0, len(df))
	for id, n := range df {
		if n > 0 {
			tokens = append(tokens, uint32(id))
		}
	}
	sort.Slice(tokens, func(i, j int) bool {
		if df[tokens[i]] != df[tokens[j]] {
			return df[tokens[i]] < df[tokens[j]]
		}
		return tokens[i] < tokens[j]
	})
	ix := &Index{
		idOf:     tokens,
		rankOfID: make([]int32, maxID+1),
		df:       make([]int32, len(tokens)),
		postings: make([][]Posting, len(tokens)),
		sets:     make([][]int32, len(b.keys)),
		keys:     b.keys,
		keyToSet: make(map[string]int32, len(b.keys)),
	}
	for i := range ix.rankOfID {
		ix.rankOfID[i] = -1
	}
	for rank, id := range tokens {
		ix.rankOfID[id] = int32(rank)
		ix.df[rank] = df[id]
	}
	for sid, vs := range b.idValues {
		ranks := make([]int32, len(vs))
		for i, id := range vs {
			ranks[i] = ix.rankOfID[id]
		}
		sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
		ix.sets[sid] = ranks
		ix.keyToSet[b.keys[sid]] = int32(sid)
		for pos, r := range ranks {
			ix.postings[r] = append(ix.postings[r], Posting{Set: int32(sid), Pos: int32(pos)})
		}
	}
	return ix, nil
}

// NumSets returns the number of indexed sets.
func (ix *Index) NumSets() int { return len(ix.sets) }

// NumTokens returns the number of distinct tokens.
func (ix *Index) NumTokens() int { return len(ix.df) }

// Key returns the external key of a set ID.
func (ix *Index) Key(set int32) string { return ix.keys[set] }

// SetID returns the set ID for an external key, if present.
func (ix *Index) SetID(key string) (int32, bool) {
	id, ok := ix.keyToSet[key]
	return id, ok
}

// TokenRank returns the global rank of a token, if indexed.
func (ix *Index) TokenRank(token string) (int32, bool) {
	r, ok := ix.tokenIDs[token]
	return r, ok
}

// DF returns the document frequency of a token rank.
func (ix *Index) DF(rank int32) int32 { return ix.df[rank] }

// RankOfID returns the rank of a dictionary ID, or -1 when the ID is
// not indexed (including ephemeral out-of-vocabulary IDs past the
// rank table). Only valid on ID-built indexes.
func (ix *Index) RankOfID(id uint32) int32 {
	if int(id) >= len(ix.rankOfID) {
		return -1
	}
	return ix.rankOfID[id]
}

// Postings returns the posting list of a token rank. Callers must not
// mutate the returned slice.
func (ix *Index) Postings(rank int32) []Posting { return ix.postings[rank] }

// Set returns the rank-ordered token ranks of a set. Callers must not
// mutate the returned slice.
func (ix *Index) Set(set int32) []int32 { return ix.sets[set] }

// SetSize returns the distinct-token count of a set.
func (ix *Index) SetSize(set int32) int { return len(ix.sets[set]) }

// QueryRanksIDs maps deduplicated query dictionary IDs to the ranks
// of those present in the index, sorted ascending (rarest first).
// Unknown IDs — including ephemeral out-of-vocabulary IDs, which lie
// past the rank table — cannot contribute to overlap and are dropped.
// Only valid on ID-built indexes.
func (ix *Index) QueryRanksIDs(ids []uint32) []int32 {
	out := make([]int32, 0, len(ids))
	for _, id := range ids {
		if int(id) < len(ix.rankOfID) {
			if r := ix.rankOfID[id]; r >= 0 {
				out = append(out, r)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// QueryRanks maps query values to the ranks of those present in the
// dictionary, sorted ascending (rarest first). Unknown values cannot
// contribute to overlap and are dropped.
func (ix *Index) QueryRanks(values []string) []int32 {
	seen := make(map[int32]bool, len(values))
	out := make([]int32, 0, len(values))
	for _, v := range values {
		if r, ok := ix.tokenIDs[v]; ok && !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Overlap computes the exact overlap between sorted rank slices via a
// linear merge.
func Overlap(a, b []int32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// OverlapFrom computes the overlap between a[ai:] and b[bi:].
func OverlapFrom(a []int32, ai int, b []int32, bi int) int {
	return Overlap(a[ai:], b[bi:])
}
