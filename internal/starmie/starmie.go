// Package starmie implements contextualized column representations for
// dataset discovery in the style of Starmie (Fan et al., 2022). Where
// context-free encoders embed a column from its values alone, the
// encoder here mixes in the rest of the table — other columns' content
// and headers — so the same values in different table contexts get
// different vectors. That is the property Starmie's contrastive
// training buys: homograph columns stop colliding and retrieval
// reflects the table's intent. Retrieval runs over an HNSW graph
// (approximate) or a linear scan (exact baseline), and table-level
// scores aggregate column similarities by bipartite matching.
package starmie

import (
	"errors"
	"fmt"
	"sort"

	"tablehound/internal/embedding"
	"tablehound/internal/graph"
	"tablehound/internal/hnsw"
	"tablehound/internal/parallel"
	"tablehound/internal/table"
	"tablehound/internal/tokenize"
	"tablehound/internal/vecstore"
)

// Encoder turns table columns into context-aware vectors.
type Encoder struct {
	model *embedding.Model
	// ContextWeight in [0, 1) controls how much of the vector comes
	// from the surrounding table rather than the column itself.
	contextWeight float64
}

// NewEncoder creates an encoder. contextWeight 0 reproduces the
// context-free baseline; Starmie-like behavior sits around 0.3.
func NewEncoder(model *embedding.Model, contextWeight float64) *Encoder {
	if contextWeight < 0 {
		contextWeight = 0
	}
	if contextWeight > 0.9 {
		contextWeight = 0.9
	}
	return &Encoder{model: model, contextWeight: contextWeight}
}

// contentVector embeds a column from its own values and header.
func (e *Encoder) contentVector(c *table.Column) embedding.Vector {
	v := e.model.ColumnVector(c.Values).Clone()
	// Header words contribute lightly: lake headers are unreliable.
	words := tokenize.Words(c.Name)
	if len(words) > 0 {
		hv := embedding.Zero(e.model.Dim())
		for _, w := range words {
			hv.Add(e.model.TokenVector(w))
		}
		hv.Normalize()
		v.AddScaled(hv, 0.2)
	}
	return v.Normalize()
}

// EncodeColumns returns a context-aware vector per column, keyed by
// column name (ordered as in the table).
func (e *Encoder) EncodeColumns(t *table.Table) []embedding.Vector {
	cols := t.Columns
	content := make([]embedding.Vector, len(cols))
	for i, c := range cols {
		content[i] = e.contentVector(c)
	}
	if e.contextWeight == 0 || len(cols) < 2 {
		return content
	}
	out := make([]embedding.Vector, len(cols))
	for i := range cols {
		ctx := embedding.Zero(e.model.Dim())
		for j := range cols {
			if j != i {
				ctx.Add(content[j])
			}
		}
		ctx.Normalize()
		v := content[i].Clone()
		v.Scale(1 - e.contextWeight)
		v.AddScaled(ctx, e.contextWeight)
		out[i] = v.Normalize()
	}
	return out
}

// Result is one ranked unionable table.
type Result struct {
	TableID string
	Score   float64
}

// Index retrieves unionable tables by contextualized column vectors.
type Index struct {
	enc     *Encoder
	graph   *hnsw.Graph
	colKeys []string
	vecs    map[string]embedding.Vector
	byTable map[string][]string // table ID -> column keys
	built   bool

	// Bound vector-store state (see Bind): row i of view backs
	// colKeys[i], rowOf inverts that for norm lookups, and nprobe
	// limits centroid-pruned exact search (0 = all = exhaustive-
	// identical).
	view    vecstore.View
	rowOf   map[string]int
	hasView bool
	nprobe  int
}

// NewIndex creates an index over the encoder.
func NewIndex(enc *Encoder) *Index {
	return &Index{
		enc:     enc,
		vecs:    make(map[string]embedding.Vector),
		byTable: make(map[string][]string),
	}
}

// AddTable encodes and stages a table's columns.
func (ix *Index) AddTable(t *table.Table) {
	if _, dup := ix.byTable[t.ID]; dup {
		return
	}
	vecs := ix.enc.EncodeColumns(t)
	var keys []string
	for i, c := range t.Columns {
		key := table.ColumnKey(t.ID, c.Name)
		ix.vecs[key] = vecs[i]
		ix.colKeys = append(ix.colKeys, key)
		keys = append(keys, key)
	}
	ix.byTable[t.ID] = keys
	ix.built = false
}

// AddTables stages a batch of tables using up to workers goroutines.
// Contextual encoding — the dominant cost — fans out per table;
// key registration commits sequentially in batch order, so the index
// state is identical at any worker count. The encoder's model is only
// read. The HNSW graph is still built by Build, sequentially, because
// its structure depends on insertion order.
func (ix *Index) AddTables(tables []*table.Table, workers int) {
	encoded, _ := parallel.Map(len(tables), workers, func(i int) ([]embedding.Vector, error) {
		return ix.enc.EncodeColumns(tables[i]), nil
	})
	for i, t := range tables {
		if _, dup := ix.byTable[t.ID]; dup {
			continue
		}
		var keys []string
		for j, c := range t.Columns {
			key := table.ColumnKey(t.ID, c.Name)
			ix.vecs[key] = encoded[i][j]
			ix.colKeys = append(ix.colKeys, key)
			keys = append(keys, key)
		}
		ix.byTable[t.ID] = keys
		ix.built = false
	}
}

// AddVector stages a raw column vector under a key, for callers that
// encode columns themselves (benchmarks, bulk loads). Keys must be
// unique and of the form "tableID.column".
func (ix *Index) AddVector(key string, v embedding.Vector) {
	if _, dup := ix.vecs[key]; dup {
		return
	}
	ix.vecs[key] = v
	ix.colKeys = append(ix.colKeys, key)
	id, _ := table.SplitColumnKey(key)
	ix.byTable[id] = append(ix.byTable[id], key)
	ix.built = false
}

// Build constructs the HNSW graph.
func (ix *Index) Build() error {
	if len(ix.colKeys) == 0 {
		return errors.New("starmie: no tables added")
	}
	sort.Strings(ix.colKeys)
	ix.graph = hnsw.New(hnsw.Config{M: 12, EfConstruction: 100, Seed: 23})
	for _, k := range ix.colKeys {
		if err := ix.graph.Add(k, ix.vecs[k]); err != nil {
			return err
		}
	}
	ix.built = true
	ix.hasView = false // stale after any re-Build; caller re-Binds
	ix.rowOf = nil
	return nil
}

// NumColumns returns the number of indexed column vectors.
func (ix *Index) NumColumns() int { return len(ix.colKeys) }

// ColumnKeys returns the indexed column keys in their sorted
// (post-Build) order — the row order of the index's vector-store
// segment. The slice is the index's own; callers must not mutate it.
func (ix *Index) ColumnKeys() []string { return ix.colKeys }

// VectorOf returns the indexed vector for a column key, or nil.
func (ix *Index) VectorOf(key string) embedding.Vector { return ix.vecs[key] }

// Bind aliases the index onto a vector-store view whose row i holds
// colKeys[i]'s vector (bit-identical values — only the backing
// memory moves). It enables norm-precomputed cosine in SearchTables
// and, when the view's segment has a centroid table, cluster-pruned
// exact search with the given nprobe (0 = visit every non-excluded
// cluster = bit-identical to the exhaustive scan).
func (ix *Index) Bind(view vecstore.View, nprobe int) error {
	if !ix.built {
		return ErrNotBuilt
	}
	if view.Len() != len(ix.colKeys) {
		return fmt.Errorf("starmie: bind over %d rows, index has %d columns", view.Len(), len(ix.colKeys))
	}
	rowOf := make(map[string]int, len(ix.colKeys))
	for i, k := range ix.colKeys {
		ix.vecs[k] = embedding.Vector(view.Vec(i))
		rowOf[k] = i
	}
	if err := ix.graph.RebindVecs(view.Vec, view.Len()); err != nil {
		return err
	}
	ix.view, ix.rowOf, ix.hasView = view, rowOf, true
	ix.nprobe = nprobe
	return nil
}

// SetNProbe adjusts how many clusters pruned exact search visits.
// Not safe to call concurrently with searches; set it at load time.
func (ix *Index) SetNProbe(n int) { ix.nprobe = n }

// ErrNotBuilt is returned (or nil results, for SearchColumns) when a
// search runs before Build has frozen the staged tables.
var ErrNotBuilt = errors.New("starmie: index not built (call Build after adding tables)")

// SearchColumns returns the k nearest indexed columns to a vector.
// Approximate (HNSW) unless exact is set, which linearly scans.
// SearchColumns is a pure read: it requires a prior Build (nil
// otherwise, never an implicit rebuild) and is safe for concurrent
// use.
func (ix *Index) SearchColumns(v embedding.Vector, k, efSearch int, exact bool) []hnsw.Result {
	if !ix.built {
		return nil
	}
	if exact {
		// Centroid-pruned scan when a quantized view is bound: visits
		// clusters in ascending centroid distance, skips those whose
		// dot bound cannot reach the current k-th score. With nprobe=0
		// the results are bit-identical to BruteForce; nprobe>0 trades
		// recall for work.
		if ix.hasView && ix.view.Centroids() != nil {
			hits := ix.view.TopK(v, k, ix.nprobe, nil)
			out := make([]hnsw.Result, len(hits))
			for i, h := range hits {
				out[i] = hnsw.Result{Key: ix.colKeys[h.Row], Score: h.Score}
			}
			return out
		}
		return ix.graph.BruteForce(v, k)
	}
	return ix.graph.Search(v, k, efSearch)
}

// SearchTables returns the k tables most unionable with the query:
// each query column retrieves its nearest indexed columns, candidate
// tables are scored by bipartite matching of column cosines, top k
// returned. exact switches retrieval to the linear-scan baseline.
// SearchTables is a pure read: it requires a prior Build (ErrNotBuilt
// otherwise) and is safe for concurrent use.
func (ix *Index) SearchTables(query *table.Table, k, efSearch int, exact bool) ([]Result, error) {
	pq, err := ix.PrepareTable(query)
	if err != nil {
		return nil, err
	}
	return ix.ScoreTablesAmong(pq, ix.CandidateTables(pq, efSearch, exact), k), nil
}

// TableQuery is a query table's encoded column vectors with
// precomputed norms. Prepare once, then reuse across CandidateTables
// and ScoreTablesAmong so staged planners do not re-encode per stage.
type TableQuery struct {
	id string
	qv []embedding.Vector
	qn []float64
}

// PrepareTable encodes a query table's columns. A query without
// columns wraps table.ErrBadQuery.
func (ix *Index) PrepareTable(query *table.Table) (*TableQuery, error) {
	if !ix.built {
		return nil, ErrNotBuilt
	}
	qv := ix.enc.EncodeColumns(query)
	if len(qv) == 0 {
		return nil, fmt.Errorf("starmie: query table has no columns: %w", table.ErrBadQuery)
	}
	// Query-column norms once per query; indexed-column norms come
	// precomputed from the vector store when bound, so each matrix
	// cell in scoring is a single dot product.
	qn := make([]float64, len(qv))
	for i, v := range qv {
		qn[i] = v.Norm()
	}
	return &TableQuery{id: query.ID, qv: qv, qn: qn}, nil
}

// CandidateTables returns the sorted candidate table IDs from
// per-column retrieval, excluding the query's own ID.
func (ix *Index) CandidateTables(pq *TableQuery, efSearch int, exact bool) []string {
	seen := make(map[string]bool)
	var cands []string
	for _, v := range pq.qv {
		for _, r := range ix.SearchColumns(v, 8, efSearch, exact) {
			id, _ := table.SplitColumnKey(r.Key)
			if !seen[id] && id != pq.id {
				seen[id] = true
				cands = append(cands, id)
			}
		}
	}
	sort.Strings(cands)
	return cands
}

// ScoreTablesAmong scores the given candidate tables by bipartite
// matching of column cosines and returns the top k; with ids =
// CandidateTables(pq, efSearch, exact) it is bit-identical to
// SearchTables.
func (ix *Index) ScoreTablesAmong(pq *TableQuery, ids []string, k int) []Result {
	var res []Result
	for _, id := range ids {
		if id == pq.id {
			continue
		}
		ckeys := ix.byTable[id]
		w := make([][]float64, len(pq.qv))
		for i, v := range pq.qv {
			w[i] = make([]float64, len(ckeys))
			for j, ck := range ckeys {
				c := ix.cosine(v, pq.qn[i], ck)
				if c > 0 {
					w[i][j] = c
				}
			}
		}
		_, total := graph.MaxWeightBipartiteMatching(w)
		res = append(res, Result{TableID: id, Score: total / float64(len(pq.qv))})
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].Score != res[j].Score {
			return res[i].Score > res[j].Score
		}
		return res[i].TableID < res[j].TableID
	})
	if len(res) > k {
		res = res[:k]
	}
	return res
}

// cosine scores a query column (norm vn) against an indexed column,
// using the store's precomputed norm when a view is bound — same
// value as embedding.Cosine, one dot product instead of three.
func (ix *Index) cosine(v embedding.Vector, vn float64, ck string) float64 {
	if ix.hasView {
		if row, ok := ix.rowOf[ck]; ok {
			return embedding.CosineWithNorms(v, ix.vecs[ck], vn, ix.view.Norm(row))
		}
	}
	return embedding.CosineWithNorms(v, ix.vecs[ck], vn, ix.vecs[ck].Norm())
}
