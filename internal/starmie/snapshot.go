package starmie

import (
	"fmt"
	"sort"

	"tablehound/internal/embedding"
	"tablehound/internal/hnsw"
	"tablehound/internal/snap"
	"tablehound/internal/vecstore"
)

// AppendSnapshot encodes a built index: the column keys in their
// sorted (post-Build) order, the per-table key grouping in
// registration order, and the HNSW graph topology (its structure
// depends on insertion order and the construction RNG, so it cannot
// be re-derived from the vectors). Column vectors are not stored
// here — row i of the snapshot's "starmie" vector-store segment is
// colKeys[i]'s vector, shared by the map, the graph, and any
// centroid table.
func (ix *Index) AppendSnapshot(e *snap.Encoder) {
	e.F64(ix.enc.contextWeight)
	e.Strs(ix.colKeys)
	// byTable key lists keep each table's original column order (the
	// order bipartite matching iterates), which sorted colKeys cannot
	// reproduce — store them verbatim, tables in sorted ID order.
	ids := make([]string, 0, len(ix.byTable))
	for id := range ix.byTable {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	e.U32(uint32(len(ids)))
	for _, id := range ids {
		e.Str(id)
		e.Strs(ix.byTable[id])
	}
	ix.graph.AppendSnapshotShared(e)
}

// DecodeSnapshot rebuilds an index written by AppendSnapshot over the
// loaded embedding model and the snapshot's "starmie" vector segment,
// whose row i backs colKeys[i]. The loaded index comes back bound
// (norm-precomputed scoring, centroid-pruned exact search if the
// segment carries a centroid table) with nprobe 0; the caller applies
// its runtime nprobe via SetNProbe.
func DecodeSnapshot(d *snap.Decoder, model *embedding.Model, view vecstore.View) (*Index, error) {
	contextWeight := d.F64()
	colKeys := d.Strs()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if view.Len() != len(colKeys) {
		return nil, fmt.Errorf("%w: starmie has %d columns, vector segment %d rows", snap.ErrCorrupt, len(colKeys), view.Len())
	}
	ix := NewIndex(NewEncoder(model, contextWeight))
	ix.colKeys = colKeys
	ix.rowOf = make(map[string]int, len(colKeys))
	for i, k := range colKeys {
		if _, dup := ix.vecs[k]; dup {
			return nil, fmt.Errorf("%w: duplicate starmie column %q", snap.ErrCorrupt, k)
		}
		ix.vecs[k] = embedding.Vector(view.Vec(i))
		ix.rowOf[k] = i
	}
	numTables := int(d.U32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	for i := 0; i < numTables; i++ {
		id := d.Str()
		keys := d.Strs()
		if d.Err() != nil {
			return nil, d.Err()
		}
		if _, dup := ix.byTable[id]; dup {
			return nil, fmt.Errorf("%w: duplicate starmie table %q", snap.ErrCorrupt, id)
		}
		for _, k := range keys {
			if _, ok := ix.vecs[k]; !ok {
				return nil, fmt.Errorf("%w: starmie table %q references unknown column %q", snap.ErrCorrupt, id, k)
			}
		}
		ix.byTable[id] = keys
	}
	var err error
	if ix.graph, err = hnsw.DecodeSnapshotShared(d, view.Vec, view.Len()); err != nil {
		return nil, err
	}
	ix.view, ix.hasView = view, true
	ix.built = true
	return ix, nil
}
