package starmie

import (
	"fmt"
	"sort"

	"tablehound/internal/embedding"
	"tablehound/internal/hnsw"
	"tablehound/internal/snap"
)

// AppendSnapshot encodes a built index: the column keys in their
// sorted (post-Build) order, each key's contextual vector, the
// per-table key grouping in registration order, and the HNSW graph
// verbatim (its topology depends on insertion order and the
// construction RNG, so it cannot be re-derived from the vectors).
func (ix *Index) AppendSnapshot(e *snap.Encoder) {
	e.F64(ix.enc.contextWeight)
	e.Strs(ix.colKeys)
	for _, k := range ix.colKeys {
		e.F32s(ix.vecs[k])
	}
	// byTable key lists keep each table's original column order (the
	// order bipartite matching iterates), which sorted colKeys cannot
	// reproduce — store them verbatim, tables in sorted ID order.
	ids := make([]string, 0, len(ix.byTable))
	for id := range ix.byTable {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	e.U32(uint32(len(ids)))
	for _, id := range ids {
		e.Str(id)
		e.Strs(ix.byTable[id])
	}
	ix.graph.AppendSnapshot(e)
}

// DecodeSnapshot rebuilds an index written by AppendSnapshot over the
// loaded embedding model.
func DecodeSnapshot(d *snap.Decoder, model *embedding.Model) (*Index, error) {
	contextWeight := d.F64()
	colKeys := d.Strs()
	if d.Err() != nil {
		return nil, d.Err()
	}
	ix := NewIndex(NewEncoder(model, contextWeight))
	ix.colKeys = colKeys
	for _, k := range colKeys {
		vec := d.F32s()
		if d.Err() != nil {
			return nil, d.Err()
		}
		if _, dup := ix.vecs[k]; dup {
			return nil, fmt.Errorf("%w: duplicate starmie column %q", snap.ErrCorrupt, k)
		}
		ix.vecs[k] = vec
	}
	numTables := int(d.U32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	for i := 0; i < numTables; i++ {
		id := d.Str()
		keys := d.Strs()
		if d.Err() != nil {
			return nil, d.Err()
		}
		if _, dup := ix.byTable[id]; dup {
			return nil, fmt.Errorf("%w: duplicate starmie table %q", snap.ErrCorrupt, id)
		}
		for _, k := range keys {
			if _, ok := ix.vecs[k]; !ok {
				return nil, fmt.Errorf("%w: starmie table %q references unknown column %q", snap.ErrCorrupt, id, k)
			}
		}
		ix.byTable[id] = keys
	}
	var err error
	if ix.graph, err = hnsw.DecodeSnapshot(d); err != nil {
		return nil, err
	}
	ix.built = true
	return ix, nil
}
