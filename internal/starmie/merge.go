// Merge support for incremental (delta) index maintenance: an index
// can be decomposed into per-table column vectors and reassembled from
// parts gathered across a base snapshot and a delta chain. Column
// vectors are pure functions of the frozen embedding model and the
// table's own content, so reassembly plus Build — which sorts the
// global key list before constructing the HNSW graph — is
// bit-identical to a from-scratch build over the merged catalog.
package starmie

import (
	"errors"
	"fmt"
	"sort"

	"tablehound/internal/embedding"
)

// TableParts is one table's contextualized column vectors: Keys in
// table-column order (the order SearchTables walks a candidate's
// columns in), Vecs parallel to Keys.
type TableParts struct {
	ID   string
	Keys []string
	Vecs []embedding.Vector
}

// Parts returns the index's per-table vectors, tables in sorted-ID
// order. Works whether or not Build has run (vectors are staged by
// AddTable/AddTables). Slices alias the index's state; do not mutate.
func (ix *Index) Parts() []TableParts {
	ids := make([]string, 0, len(ix.byTable))
	for id := range ix.byTable {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]TableParts, 0, len(ids))
	for _, id := range ids {
		keys := ix.byTable[id]
		p := TableParts{ID: id, Keys: keys, Vecs: make([]embedding.Vector, len(keys))}
		for i, k := range keys {
			p.Vecs[i] = ix.vecs[k]
		}
		out = append(out, p)
	}
	return out
}

// NewIndexFromParts assembles a built index from parts: every table's
// keys register in their original column order (preserving byTable
// iteration order for candidate scoring), then Build sorts the global
// key list and constructs the graph exactly as a fresh build would.
// The caller re-binds the index onto a vector store afterwards (see
// core's buildVecStore).
func NewIndexFromParts(enc *Encoder, parts []TableParts) (*Index, error) {
	ix := NewIndex(enc)
	for _, p := range parts {
		if _, dup := ix.byTable[p.ID]; dup {
			return nil, fmt.Errorf("starmie: duplicate table %q", p.ID)
		}
		if len(p.Keys) != len(p.Vecs) {
			return nil, fmt.Errorf("starmie: table %q has %d keys for %d vectors", p.ID, len(p.Keys), len(p.Vecs))
		}
		for i, k := range p.Keys {
			if _, dup := ix.vecs[k]; dup {
				return nil, fmt.Errorf("starmie: duplicate column key %q", k)
			}
			ix.vecs[k] = p.Vecs[i]
			ix.colKeys = append(ix.colKeys, k)
		}
		ix.byTable[p.ID] = p.Keys
	}
	if len(ix.colKeys) == 0 {
		return nil, errors.New("starmie: no columns in parts")
	}
	if err := ix.Build(); err != nil {
		return nil, err
	}
	return ix, nil
}
