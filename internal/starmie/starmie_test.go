package starmie

import (
	"testing"

	"tablehound/internal/datagen"
	"tablehound/internal/embedding"
	"tablehound/internal/metrics"
	"tablehound/internal/table"
)

func testLake() (*datagen.Lake, *embedding.Model) {
	lake := datagen.Generate(datagen.Config{
		Seed:              21,
		NumDomains:        14,
		DomainSize:        100,
		NumTemplates:      5,
		TablesPerTemplate: 5,
	})
	model := embedding.Train(lake.ColumnContexts(), embedding.Config{Dim: 64, Seed: 9})
	return lake, model
}

func TestEncodeColumnsContextShiftsVectors(t *testing.T) {
	_, model := testLake()
	enc := NewEncoder(model, 0.4)
	free := NewEncoder(model, 0)
	// Same column values in two different table contexts.
	shared := []string{"alpha", "beta", "gamma", "delta"}
	t1 := table.MustNew("t1", "t1", []*table.Column{
		table.NewColumn("x", shared),
		table.NewColumn("ctx", []string{"red", "green", "blue", "cyan"}),
	})
	t2 := table.MustNew("t2", "t2", []*table.Column{
		table.NewColumn("x", shared),
		table.NewColumn("ctx", []string{"paris", "tokyo", "cairo", "lima"}),
	})
	c1 := enc.EncodeColumns(t1)[0]
	c2 := enc.EncodeColumns(t2)[0]
	f1 := free.EncodeColumns(t1)[0]
	f2 := free.EncodeColumns(t2)[0]
	// Context-free vectors are identical; contextual ones diverge.
	if embedding.Cosine(f1, f2) < 0.999 {
		t.Error("context-free encoder should ignore context")
	}
	if embedding.Cosine(c1, c2) > 0.98 {
		t.Errorf("contextual vectors too similar: %v", embedding.Cosine(c1, c2))
	}
}

func TestEncoderClampsWeight(t *testing.T) {
	_, model := testLake()
	if NewEncoder(model, -1).contextWeight != 0 {
		t.Error("negative weight not clamped")
	}
	if NewEncoder(model, 5).contextWeight != 0.9 {
		t.Error("excess weight not clamped")
	}
}

func TestSearchTablesFindsUnionable(t *testing.T) {
	lake, model := testLake()
	ix := NewIndex(NewEncoder(model, 0.3))
	for _, tbl := range lake.Tables {
		ix.AddTable(tbl)
	}
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	var retrieved [][]string
	var relevant []map[string]bool
	for i := 0; i < 5; i++ {
		q := lake.Tables[i*5]
		res, err := ix.SearchTables(q, 4, 64, false)
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]string, len(res))
		for j, r := range res {
			ids[j] = r.TableID
		}
		retrieved = append(retrieved, ids)
		relevant = append(relevant, lake.UnionableWith(q.ID))
	}
	if m := metrics.MAP(retrieved, relevant); m < 0.6 {
		t.Errorf("MAP = %.3f, want >= 0.6", m)
	}
}

func TestApproxMatchesExactRetrieval(t *testing.T) {
	lake, model := testLake()
	ix := NewIndex(NewEncoder(model, 0.3))
	for _, tbl := range lake.Tables {
		ix.AddTable(tbl)
	}
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	q := lake.Tables[3]
	qv := ix.enc.EncodeColumns(q)[0]
	exact := ix.SearchColumns(qv, 10, 0, true)
	approx := ix.SearchColumns(qv, 10, 100, false)
	truthSet := map[string]bool{}
	for _, r := range exact {
		truthSet[r.Key] = true
	}
	hits := 0
	for _, r := range approx {
		if truthSet[r.Key] {
			hits++
		}
	}
	if float64(hits)/float64(len(exact)) < 0.8 {
		t.Errorf("HNSW recall@10 vs exact = %d/%d", hits, len(exact))
	}
}

func TestIndexErrorsAndDedup(t *testing.T) {
	_, model := testLake()
	ix := NewIndex(NewEncoder(model, 0.3))
	if err := ix.Build(); err == nil {
		t.Error("empty Build should fail")
	}
	tbl := table.MustNew("t", "t", []*table.Column{
		table.NewColumn("a", []string{"x", "y"}),
	})
	ix.AddTable(tbl)
	ix.AddTable(tbl) // duplicate ignored
	if ix.NumColumns() != 1 {
		t.Errorf("NumColumns = %d", ix.NumColumns())
	}
}

func TestHomographDisambiguation(t *testing.T) {
	// The Starmie headline: a homograph column ("jaguar" the animal vs
	// the car) retrieves context-consistent matches when encoded with
	// context. Build a lake where the same value set appears with two
	// context column types.
	model := embedding.Train([][]string{
		{"lion", "tiger", "panther", "leopard", "jaguar"},
		{"ford", "toyota", "honda", "jaguar", "bmw"},
		{"habitat_forest", "habitat_savanna", "habitat_jungle"},
		{"dealer_north", "dealer_south", "dealer_west"},
	}, embedding.Config{Dim: 64, Seed: 2})
	animals := []string{"lion", "tiger", "jaguar", "panther"}
	cars := []string{"ford", "jaguar", "toyota", "honda"}
	habitats := []string{"habitat_forest", "habitat_savanna", "habitat_jungle", "habitat_forest"}
	dealers := []string{"dealer_north", "dealer_south", "dealer_west", "dealer_north"}

	mk := func(id string, a, b []string) *table.Table {
		return table.MustNew(id, id, []*table.Column{
			table.NewColumn("subject", a),
			table.NewColumn("context", b),
		})
	}
	ix := NewIndex(NewEncoder(model, 0.5))
	ix.AddTable(mk("animals1", animals, habitats))
	ix.AddTable(mk("cars1", cars, dealers))
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	// Query: an animal table containing the homograph.
	q := mk("query", []string{"jaguar", "leopard", "lion", "tiger"}, habitats)
	res, err := ix.SearchTables(q, 2, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].TableID != "animals1" {
		t.Errorf("contextual search results = %+v, want animals1 first", res)
	}
}

func TestSearchTablesSkipsSelf(t *testing.T) {
	lake, model := testLake()
	ix := NewIndex(NewEncoder(model, 0.3))
	for _, tbl := range lake.Tables {
		ix.AddTable(tbl)
	}
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	q := lake.Tables[0]
	res, err := ix.SearchTables(q, 30, 64, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.TableID == q.ID {
			t.Error("query table returned as its own result")
		}
	}
}
