package starmie

import (
	"reflect"
	"testing"
)

// TestAddTablesMatchesSequential checks the batch loader's parity
// contract: AddTables at any worker count must leave the index in the
// same state as the historical one-at-a-time AddTable loop, so the
// HNSW graph built afterwards — and every search — is identical.
func TestAddTablesMatchesSequential(t *testing.T) {
	lake, model := testLake()
	query := lake.Tables[0]

	seq := NewIndex(NewEncoder(model, 0.3))
	for _, tbl := range lake.Tables {
		seq.AddTable(tbl)
	}
	if err := seq.Build(); err != nil {
		t.Fatal(err)
	}
	want, err := seq.SearchTables(query, 5, 64, false)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		par := NewIndex(NewEncoder(model, 0.3))
		par.AddTables(lake.Tables, workers)
		if par.NumColumns() != seq.NumColumns() {
			t.Fatalf("workers=%d: %d columns, want %d", workers, par.NumColumns(), seq.NumColumns())
		}
		if err := par.Build(); err != nil {
			t.Fatal(err)
		}
		got, err := par.SearchTables(query, 5, 64, false)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: results differ\ngot  %+v\nwant %+v", workers, got, want)
		}
	}
}
