// Package server is the lakeserved serving layer: it wraps a built
// core.System in an HTTP API with admission control, a query-result
// cache, live observability, and graceful lifecycle management.
//
// Layering, outermost first:
//
//	panic recovery  → a handler panic becomes HTTP 500 + a counter,
//	                  never a dead process
//	drain gate      → during shutdown new requests get 503 while
//	                  in-flight ones finish
//	metrics         → per-endpoint request counts, error counts, and
//	                  streaming latency quantiles (internal/obs)
//	admission       → a semaphore bounds concurrent queries, a bounded
//	                  queue absorbs bursts, and beyond that requests
//	                  are shed with 429 + Retry-After
//	cache           → exact-key query-result cache (internal/qcache);
//	                  a hit returns the bit-identical bytes of the
//	                  original response
//	query           → the core.System search surfaces, run under a
//	                  per-request timeout with cooperative cancellation
//
// The lake snapshot is an atomic pointer: Swap installs a new
// core.System without pausing traffic and invalidates the cache (both
// eagerly, via Purge, and structurally — cache keys embed the snapshot
// generation, so a response computed against an old snapshot can never
// be served against a new one).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tablehound/internal/core"
	"tablehound/internal/discover"
	"tablehound/internal/lake"
	"tablehound/internal/obs"
	"tablehound/internal/qcache"
	"tablehound/internal/table"
)

// Config tunes the serving layer. The zero value gets sensible
// defaults from New.
type Config struct {
	// MaxInFlight bounds concurrently executing queries. Default:
	// NumCPU, min 2.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot; beyond
	// it requests are shed with 429. Default: 4*MaxInFlight.
	MaxQueue int
	// QueryTimeout is the per-request execution budget. Expired
	// requests get 504; surfaces with context plumbing abort early.
	// Default: 30s.
	QueryTimeout time.Duration
	// DrainTimeout bounds how long Shutdown waits for in-flight
	// queries. Default: 10s.
	DrainTimeout time.Duration
	// CacheEntries sizes the query-result cache; 0 disables caching.
	CacheEntries int
	// Shard, when non-nil, marks this server as serving one shard of a
	// partitioned lake. /healthz reports it, so a router can verify
	// that every upstream was built from the same manifest before
	// fanning queries across them.
	Shard *ShardIdentity
	// FixedOrderPlanner pins /v1/discover to the fixed cheap→expensive
	// prefilter order instead of the cost-based ordering. Results are
	// bit-identical either way (prefilter intersection is commutative);
	// the knob exists for A/B-ing stage costs and as an escape hatch.
	FixedOrderPlanner bool
}

// ShardIdentity names the shard a server is serving and the manifest
// it was partitioned under.
type ShardIdentity struct {
	// Index is the shard number in [0, Count).
	Index int
	// Count is the total shard count of the partitioning.
	Count int
	// ManifestHash fingerprints the build manifest (snap.Manifest.Hash).
	ManifestHash uint64
}

func (c *Config) applyDefaults() {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.NumCPU()
		if c.MaxInFlight < 2 {
			c.MaxInFlight = 2
		}
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
}

// snapshot bundles a built system with its precomputed lake stats, the
// monotonic swap generation (observability), and the data generation
// (core.System.Generation — the hash of the live table membership)
// that namespaces cache keys. Two snapshots with the same dataGen
// answer every query bit-identically (the delta parity invariant), so
// cache entries survive swaps that do not change the data — e.g. a
// compaction that folds a delta chain into an equivalent base.
type snapshot struct {
	sys     *core.System
	stats   lake.Stats
	gen     uint64
	dataGen uint64
}

// Server serves discovery queries over one atomically swappable lake
// snapshot.
type Server struct {
	cfg   Config
	snap  atomic.Pointer[snapshot]
	gen   atomic.Uint64
	cache *qcache.Cache
	lim   *limiter
	mux   *http.ServeMux
	start time.Time

	draining atomic.Bool
	queries  sync.WaitGroup // query goroutines, incl. ones orphaned by timeout

	// reloader, when set, produces a replacement system for the
	// /v1/admin/reload endpoint (typically by loading a snapshot file).
	// compactor, when set, folds the serving delta chain into a new
	// base for /v1/admin/compact (typically core.CompactFiles plus
	// delta-file retirement). reloadMu serializes both so concurrent
	// requests install their snapshots one at a time, in order.
	reloadMu  sync.Mutex
	reloader  func() (*core.System, error)
	compactor func() (*core.System, error)

	// Observability.
	reg       *obs.Registry
	endpoints map[string]*endpointMetrics
	stages    map[string]*stageMetrics
	inflight  *obs.Gauge
	queued    *obs.Gauge
	shed      *obs.Counter
	timeouts  *obs.Counter
	panics    *obs.Counter
	swaps     *obs.Counter
	// service tracks pure query execution time (excluding queueing),
	// the input to the Retry-After estimate for shed requests.
	service *obs.Histogram

	// testHookQueryStart, when set, runs at the start of every query
	// goroutine while its admission slot is held. Tests use it to pin
	// queries and saturate admission deterministically.
	testHookQueryStart func()
}

type endpointMetrics struct {
	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

// stageMetrics tracks one discover planner stage: latency,
// candidate-reduction counters (candidates entering vs surviving), and
// the planner's survivor estimates vs reality (estimate totals and
// absolute estimate error, for est-quality dashboards).
type stageMetrics struct {
	latency *obs.Histogram
	in      *obs.Counter
	out     *obs.Counter
	estOut  *obs.Counter
	estErr  *obs.Counter
}

// New builds a Server around an already-built system.
func New(sys *core.System, cfg Config) *Server {
	cfg.applyDefaults()
	s := &Server{
		cfg:   cfg,
		cache: qcache.New(cfg.CacheEntries),
		lim:   newLimiter(cfg.MaxInFlight, cfg.MaxQueue),
		reg:   obs.NewRegistry(),
		start: time.Now(),
	}
	s.snap.Store(&snapshot{sys: sys, stats: sys.Catalog.Stats(), gen: 0, dataGen: sys.Generation()})

	s.endpoints = make(map[string]*endpointMetrics)
	for _, name := range []string{"join", "union", "keyword", "discover"} {
		lbl := fmt.Sprintf("endpoint=%q", name)
		s.endpoints[name] = &endpointMetrics{
			requests: s.reg.Counter("lakeserved_requests_total", "Requests handled, by endpoint.", lbl),
			errors:   s.reg.Counter("lakeserved_errors_total", "Requests answered with a non-2xx status, by endpoint.", lbl),
			latency:  s.reg.Histogram("lakeserved_request_seconds", "Request latency, by endpoint.", lbl),
		}
	}
	s.stages = make(map[string]*stageMetrics)
	for _, name := range []string{
		discover.StageMeta, discover.StageKeyword, discover.StageValues,
		discover.StageCandidates, discover.StageVerify,
	} {
		lbl := fmt.Sprintf("stage=%q", name)
		s.stages[name] = &stageMetrics{
			latency: s.reg.Histogram("lakeserved_discover_stage_seconds", "Discover planner stage latency, by stage.", lbl),
			in:      s.reg.Counter("lakeserved_discover_stage_candidates_in_total", "Candidates entering a discover planner stage.", lbl),
			out:     s.reg.Counter("lakeserved_discover_stage_candidates_out_total", "Candidates surviving a discover planner stage.", lbl),
			estOut:  s.reg.Counter("lakeserved_discover_stage_est_out_total", "Planner-estimated survivors of a discover stage.", lbl),
			estErr:  s.reg.Counter("lakeserved_discover_stage_est_abs_err_total", "Absolute error of the planner's survivor estimate, by stage.", lbl),
		}
	}
	s.inflight = s.reg.Gauge("lakeserved_inflight", "Queries currently executing.", "")
	s.queued = s.reg.Gauge("lakeserved_queue_depth", "Queries waiting for an execution slot.", "")
	s.shed = s.reg.Counter("lakeserved_shed_total", "Requests shed with 429 because the wait queue was full.", "")
	s.timeouts = s.reg.Counter("lakeserved_timeouts_total", "Queries that exceeded the per-request timeout.", "")
	s.panics = s.reg.Counter("lakeserved_panics_total", "Handler panics recovered into HTTP 500.", "")
	s.swaps = s.reg.Counter("lakeserved_snapshot_swaps_total", "Lake snapshot swaps.", "")
	s.service = s.reg.Histogram("lakeserved_service_seconds", "Query execution time, excluding admission queueing.", "")
	s.reg.GaugeFunc("lakeserved_cache_hit_ratio", "Query cache hit ratio since start.", "", s.cache.HitRatio)
	s.reg.GaugeFunc("lakeserved_cache_entries", "Query cache resident entries.", "", func() float64 {
		return float64(s.cache.Len())
	})
	s.reg.GaugeFunc("lakeserved_uptime_seconds", "Seconds since the server started.", "", func() float64 {
		return time.Since(s.start).Seconds()
	})

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/join", s.queryEndpoint("join", s.handleJoin))
	s.mux.HandleFunc("/v1/union", s.queryEndpoint("union", s.handleUnion))
	s.mux.HandleFunc("/v1/keyword", s.queryEndpoint("keyword", s.handleKeyword))
	s.mux.HandleFunc("/v1/discover", s.queryEndpoint("discover", s.handleDiscover))
	s.mux.HandleFunc("/v1/table", s.handleTable)
	s.mux.HandleFunc("/v1/admin/reload", s.handleReload)
	s.mux.HandleFunc("/v1/admin/compact", s.handleCompact)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Handler returns the full middleware-wrapped HTTP handler.
func (s *Server) Handler() http.Handler {
	return s.recoverMiddleware(s.drainMiddleware(s.mux))
}

// System returns the currently served system snapshot.
func (s *Server) System() *core.System { return s.snap.Load().sys }

// Generation returns the current snapshot generation (0 at startup,
// bumped by every Swap).
func (s *Server) Generation() uint64 { return s.snap.Load().gen }

// Swap atomically installs a new lake snapshot. In-flight queries
// finish against the snapshot they started with. The query cache is
// purged only when the data generation actually changes: cache keys
// embed the data generation, and two systems at the same generation
// answer bit-identically (the delta parity invariant), so a swap to an
// equivalent system — a compaction folding the serving delta chain
// into a new base, or a reload of the same files — keeps every entry.
func (s *Server) Swap(sys *core.System) {
	gen := s.gen.Add(1)
	dataGen := sys.Generation()
	prev := s.snap.Load()
	s.snap.Store(&snapshot{sys: sys, stats: sys.Catalog.Stats(), gen: gen, dataGen: dataGen})
	if prev == nil || prev.dataGen != dataGen {
		// Keys embed dataGen, so stale entries are already unreachable;
		// Purge just reclaims their memory eagerly.
		s.cache.Purge()
	}
	s.swaps.Inc()
}

// SetReloader installs the function /v1/admin/reload uses to produce
// a replacement system (typically core.LoadFile over a snapshot path).
// Without one, reload requests get 501.
func (s *Server) SetReloader(fn func() (*core.System, error)) {
	s.reloadMu.Lock()
	s.reloader = fn
	s.reloadMu.Unlock()
}

// Reload runs the configured reloader and, on success, installs the
// new system via Swap. It is the programmatic twin of the HTTP
// endpoint (the daemon's SIGHUP handler calls it too). Reloads are
// serialized; the snapshot load runs outside the admission limiter so
// serving is never blocked behind it.
func (s *Server) Reload() (*core.System, error) {
	s.reloadMu.Lock()
	fn := s.reloader
	if fn == nil {
		s.reloadMu.Unlock()
		return nil, errNoReloader
	}
	defer s.reloadMu.Unlock()
	sys, err := fn()
	if err != nil {
		return nil, err
	}
	s.Swap(sys)
	return sys, nil
}

// SetCompactor installs the function POST /v1/admin/compact uses to
// fold the serving snapshot's delta chain into a fresh base (typically
// core.CompactFiles plus retirement of the consumed delta files).
// Without one, compact requests get 501.
func (s *Server) SetCompactor(fn func() (*core.System, error)) {
	s.reloadMu.Lock()
	s.compactor = fn
	s.reloadMu.Unlock()
}

// Compact runs the configured compactor and, on success, installs the
// merged system via Swap. The merged system has the same data
// generation as the chain it folds, so the swap keeps the query cache.
// Compactions share the reload mutex: a reload cannot interleave with
// a compaction and observe a half-retired delta chain.
func (s *Server) Compact() (*core.System, error) {
	s.reloadMu.Lock()
	fn := s.compactor
	if fn == nil {
		s.reloadMu.Unlock()
		return nil, errNoCompactor
	}
	defer s.reloadMu.Unlock()
	sys, err := fn()
	if err != nil {
		return nil, err
	}
	s.Swap(sys)
	return sys, nil
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	sys, err := s.Compact()
	if err != nil {
		if errors.Is(err, errNoCompactor) {
			writeError(w, http.StatusNotImplemented, err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, "compact failed: "+err.Error())
		return
	}
	writeJSON(w, http.StatusOK, CompactResponse{
		Generation: s.gen.Load(),
		Tables:     sys.Catalog.Stats().Tables,
		DeltaDepth: sys.Lineage.Depth(),
	})
}

// CompactResponse is the body of a successful /v1/admin/compact.
type CompactResponse struct {
	Generation uint64 `json:"generation"`
	Tables     int    `json:"tables"`
	DeltaDepth int    `json:"delta_depth"`
}

// errNoReloader marks a reload request on a server with no reloader.
var errNoReloader = errors.New("server: no reloader configured")

// errNoCompactor marks a compact request on a server with no compactor.
var errNoCompactor = errors.New("server: no compactor configured")

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	sys, err := s.Reload()
	if err != nil {
		if errors.Is(err, errNoReloader) {
			writeError(w, http.StatusNotImplemented, err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, "reload failed: "+err.Error())
		return
	}
	st := sys.Catalog.Stats()
	writeJSON(w, http.StatusOK, ReloadResponse{
		Generation: s.gen.Load(),
		Tables:     st.Tables,
		Columns:    st.Columns,
	})
}

// ReloadResponse is the body of a successful /v1/admin/reload.
type ReloadResponse struct {
	Generation uint64 `json:"generation"`
	Tables     int    `json:"tables"`
	Columns    int    `json:"columns"`
}

// Shutdown drains the server: new requests are refused with 503 and
// in-flight queries get until ctx (or Config.DrainTimeout, whichever
// is sooner) to finish. Returns an error if the drain deadline passed
// with queries still running.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	drainCtx, cancel := context.WithTimeout(ctx, s.cfg.DrainTimeout)
	defer cancel()
	done := make(chan struct{})
	go func() {
		s.queries.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-drainCtx.Done():
		return fmt.Errorf("server: drain deadline exceeded with queries still in flight: %w", drainCtx.Err())
	}
}

// Metrics exposes the registry (for embedding and tests).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// CacheStats exposes the query-cache counters.
func (s *Server) CacheStats() qcache.Stats { return s.cache.Stats() }

// --- middleware ---

func (s *Server) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.panics.Inc()
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", v))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func (s *Server) drainMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.Header().Set("Connection", "close")
			writeError(w, http.StatusServiceUnavailable, "server is shutting down")
			return
		}
		next.ServeHTTP(w, r)
	})
}

// queryEndpoint wraps a query handler with per-endpoint metrics. The
// inner handler reports its final status code through statusWriter.
func (s *Server) queryEndpoint(name string, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	m := s.endpoints[name]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		m.requests.Inc()
		if sw.status >= 400 {
			m.errors.Inc()
		}
		m.latency.Observe(time.Since(start))
	}
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// --- query execution ---

// errShed marks a request refused by admission control.
var errShed = errors.New("server: overloaded, request shed")

// runQuery executes fn under admission control and the per-request
// timeout. The admission slot is released when fn actually returns —
// if the deadline fires first the caller gets the timeout error
// immediately but the slot stays held by the orphaned goroutine, so
// MaxInFlight truly bounds concurrent execution.
func (s *Server) runQuery(ctx context.Context, fn func(context.Context) (any, error)) (any, error) {
	release, err := s.lim.acquire(ctx, s.queued)
	if err != nil {
		return nil, err
	}
	qctx, cancel := context.WithTimeout(ctx, s.cfg.QueryTimeout)

	type out struct {
		v   any
		err error
	}
	ch := make(chan out, 1)
	s.queries.Add(1)
	s.inflight.Inc()
	go func() {
		defer func() {
			if v := recover(); v != nil {
				ch <- out{err: fmt.Errorf("query panic: %v", v)}
			}
			s.inflight.Dec()
			s.queries.Done()
			cancel()
			release()
		}()
		if hook := s.testHookQueryStart; hook != nil {
			hook()
		}
		t0 := time.Now()
		v, err := fn(qctx)
		s.service.Observe(time.Since(t0))
		ch <- out{v: v, err: err}
	}()

	select {
	case o := <-ch:
		return o.v, o.err
	case <-qctx.Done():
		s.timeouts.Inc()
		return nil, qctx.Err()
	}
}

// serveQuery is the shared tail of every query endpoint: cache lookup,
// admission, execution, error mapping, cache fill, response. key == ""
// bypasses the cache.
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, key string, fn func(context.Context) (any, error)) {
	if key != "" {
		if body, ok := s.cache.Get(key); ok {
			w.Header().Set("X-Cache", "HIT")
			writeJSONBytes(w, http.StatusOK, body)
			return
		}
		w.Header().Set("X-Cache", "MISS")
	} else {
		w.Header().Set("X-Cache", "BYPASS")
	}

	v, err := s.runQuery(r.Context(), fn)
	if err != nil {
		status, msg := errorStatus(err)
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", s.retryAfter())
			s.shed.Inc()
		} else if errors.Is(err, errSlotWait) {
			w.Header().Set("Retry-After", s.retryAfter())
		}
		writeError(w, status, msg)
		return
	}
	body, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding response: "+err.Error())
		return
	}
	if key != "" {
		s.cache.Put(key, body)
	}
	writeJSONBytes(w, http.StatusOK, body)
}

// retryAfter estimates how long a shed client should wait before
// retrying, as whole seconds: the current queue must drain ahead of a
// fresh arrival, queued requests drain MaxInFlight at a time, and each
// wave takes about one p95 service time. With no service history yet
// (or a sub-second estimate) the floor is 1s; the ceiling is 60s so a
// latency spike cannot park clients for minutes.
func (s *Server) retryAfter() string {
	return strconv.Itoa(s.retryAfterSeconds(s.lim.queueLen(), s.service.Quantile(0.95)))
}

func (s *Server) retryAfterSeconds(queueDepth int, p95 time.Duration) int {
	waves := queueDepth/s.cfg.MaxInFlight + 1
	secs := int(math.Ceil((time.Duration(waves) * p95).Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// errorStatus maps a query error to an HTTP status.
func errorStatus(err error) (int, string) {
	switch {
	case errors.Is(err, errShed):
		return http.StatusTooManyRequests, "server overloaded, retry later"
	case errors.Is(err, errSlotWait):
		// Expired while queued for admission: the query never executed,
		// so this is overload (retryable), not an execution timeout.
		return http.StatusServiceUnavailable, "server overloaded, gave up waiting for an execution slot"
	case errors.Is(err, table.ErrBadQuery):
		return http.StatusBadRequest, err.Error()
	case errors.Is(err, errNotFound):
		return http.StatusNotFound, err.Error()
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "query exceeded the server's time budget"
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, "request canceled"
	default:
		return http.StatusInternalServerError, err.Error()
	}
}

// errNotFound marks a lookup of an unknown table ID.
var errNotFound = errors.New("not found")

// --- response plumbing ---

func writeJSONBytes(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSONBytes(w, status, body)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSONBytes(w, status, mustMarshal(ErrorResponse{Error: msg}))
}

func mustMarshal(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}
