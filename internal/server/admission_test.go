package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tablehound/internal/core"
)

// TestQueuedWaiterBeatsNewArrival is the regression test for the
// admission starvation bug: with the old channel-based limiter, a
// freed slot went back to shared capacity and a fresh arrival's fast
// path could grab it before a long-queued waiter's select fired. The
// FIFO limiter hands the slot to the queue head at release time, so a
// new arrival must never win against an already-queued request.
func TestQueuedWaiterBeatsNewArrival(t *testing.T) {
	l := newLimiter(1, 4)
	rel, err := l.acquire(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}

	granted := make(chan func(), 1)
	go func() {
		r, err := l.acquire(context.Background(), nil)
		if err == nil {
			granted <- r
		}
	}()
	waitFor(t, func() bool { return l.queueLen() == 1 })

	// Free the slot: it must be assigned to the queued waiter at this
	// instant, even before the waiter's goroutine gets scheduled.
	rel()

	// A fresh arrival right behind the release must queue (and here,
	// time out), not steal the slot.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := l.acquire(ctx, nil); err == nil {
		t.Fatal("new arrival stole the slot from a queued waiter")
	} else if !errors.Is(err, errSlotWait) {
		t.Fatalf("queued-expiry error = %v, want errSlotWait", err)
	}

	select {
	case r := <-granted:
		r()
	case <-time.After(2 * time.Second):
		t.Fatal("queued waiter never received the freed slot")
	}
}

// TestReleaseOrderIsFIFO checks that multiple queued waiters are
// granted strictly in arrival order.
func TestReleaseOrderIsFIFO(t *testing.T) {
	l := newLimiter(1, 8)
	rel, err := l.acquire(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}

	const waiters = 5
	var mu sync.Mutex
	var order []int
	done := make(chan struct{}, waiters)
	for i := 0; i < waiters; i++ {
		// Enqueue one at a time so arrival order is deterministic.
		prev := l.queueLen()
		go func(i int) {
			r, err := l.acquire(context.Background(), nil)
			if err != nil {
				t.Error(err)
				done <- struct{}{}
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			done <- struct{}{}
			r()
		}(i)
		waitFor(t, func() bool { return l.queueLen() == prev+1 })
	}

	rel() // start the chain; each waiter releases to the next
	for i := 0; i < waiters; i++ {
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatalf("only %d of %d waiters were granted", i, waiters)
		}
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order = %v, want FIFO", order)
		}
	}
}

// TestCanceledWaiterDoesNotLeakSlot drives the cancel/release race: a
// waiter whose context expires just as release grants it the slot must
// hand the slot onward instead of leaking it.
func TestCanceledWaiterDoesNotLeakSlot(t *testing.T) {
	for i := 0; i < 200; i++ {
		l := newLimiter(1, 4)
		rel, err := l.acquire(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		errCh := make(chan error, 1)
		go func() {
			r, err := l.acquire(ctx, nil)
			if err == nil {
				r()
			}
			errCh <- err
		}()
		waitFor(t, func() bool { return l.queueLen() == 1 })
		// Race the grant against the cancellation.
		go rel()
		go cancel()
		<-errCh
		// Whatever the race outcome, the slot must be reusable.
		ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
		r2, err := l.acquire(ctx2, nil)
		cancel2()
		if err != nil {
			t.Fatalf("iteration %d: slot leaked after cancel/release race: %v", i, err)
		}
		r2()
	}
}

// TestQueueWaitExpiryMaps503 pins the HTTP contract for requests that
// expire while queued for admission: 503 + Retry-After (overload,
// retryable), not the 504 reserved for queries that timed out while
// executing. The handler is driven in-process so the response written
// after the request context expires is still observable.
func TestQueueWaitExpiryMaps503(t *testing.T) {
	sys, _ := demoSystem(t)
	srv := New(sys, Config{MaxInFlight: 1, MaxQueue: 4, CacheEntries: 0})

	// Pin the only execution slot so the request under test queues.
	rel, err := srv.lim.acquire(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/join",
		strings.NewReader(`{"values":["a","b","c"],"k":3}`)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)

	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s), want 503", rec.Code, rec.Body.Bytes())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 queue-expiry response without Retry-After")
	}
}

// TestAdminReload exercises the reload endpoint: method gating, the
// no-reloader case, and a successful swap bumping the generation.
func TestAdminReload(t *testing.T) {
	sys, _ := demoSystem(t)
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/admin/reload")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/admin/reload", "", http.NoBody)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("reload without reloader: status = %d, want 501", resp.StatusCode)
	}

	srv.SetReloader(func() (*core.System, error) { return sys, nil })
	resp, err = http.Post(ts.URL+"/v1/admin/reload", "", http.NoBody)
	if err != nil {
		t.Fatal(err)
	}
	var out ReloadResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status = %d", resp.StatusCode)
	}
	if out.Generation != 1 || out.Tables == 0 {
		t.Errorf("reload response = %+v", out)
	}
	if srv.swaps.Value() != 1 {
		t.Errorf("swap counter = %d", srv.swaps.Value())
	}

	srv.SetReloader(func() (*core.System, error) { return nil, errors.New("disk ate the snapshot") })
	resp, err = http.Post(ts.URL+"/v1/admin/reload", "", http.NoBody)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("failed reload: status = %d, want 500", resp.StatusCode)
	}
	if srv.swaps.Value() != 1 {
		t.Error("failed reload must not swap")
	}
}
