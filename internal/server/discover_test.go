package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"tablehound/internal/discover"
)

// --- satellite: uniform bad-query handling across every surface ---

// Every query endpoint must reject a non-positive or absent k, and an
// unknown relation/mode/method string, with HTTP 400 — the same
// table.ErrBadQuery contract, the same first-validation order.
func TestBadQuerySweep(t *testing.T) {
	_, ts, gen := newTestServer(t, Config{})
	qt := gen.Tables[0]
	vals := qt.Columns[0].Values

	cases := []struct {
		name string
		path string
		req  any
	}{
		{"join absent k", "/v1/join", JoinRequest{Values: vals}},
		{"join zero k", "/v1/join", JoinRequest{Values: vals, K: 0}},
		{"join negative k", "/v1/join", JoinRequest{Values: vals, K: -1}},
		{"join bad mode", "/v1/join", JoinRequest{Values: vals, K: 5, Mode: "fuzzy"}},
		{"union absent k", "/v1/union", UnionRequest{TableID: qt.ID}},
		{"union negative k", "/v1/union", UnionRequest{TableID: qt.ID, K: -7}},
		{"union bad method", "/v1/union", UnionRequest{TableID: qt.ID, K: 5, Method: "magic"}},
		{"keyword absent k", "/v1/keyword", KeywordRequest{Query: "x"}},
		{"keyword negative k", "/v1/keyword", KeywordRequest{Query: "x", K: -2}},
		{"keyword bad mode", "/v1/keyword", KeywordRequest{Query: "x", K: 5, Mode: "regex"}},
		{"discover absent k", "/v1/discover", DiscoverRequest{TableID: qt.ID}},
		{"discover zero k", "/v1/discover", DiscoverRequest{TableID: qt.ID, K: 0}},
		{"discover negative k", "/v1/discover", DiscoverRequest{TableID: qt.ID, K: -4}},
		{"discover bad relation", "/v1/discover", DiscoverRequest{TableID: qt.ID, K: 5, Relation: "psychic"}},
		{"discover bad mode", "/v1/discover", DiscoverRequest{TableID: qt.ID, K: 5, Mode: "fuzzy"}},
		{"discover bad method", "/v1/discover", DiscoverRequest{TableID: qt.ID, K: 5, Method: "magic"}},
		{"discover no seed", "/v1/discover", DiscoverRequest{K: 5}},
		{"discover two seeds", "/v1/discover", DiscoverRequest{TableID: qt.ID, Values: vals, K: 5}},
		{"discover bad column type", "/v1/discover", DiscoverRequest{TableID: qt.ID, K: 5,
			Predicates: discover.Predicates{ColumnTypes: []string{"uuid"}}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+c.path, c.req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d (%s), want 400", resp.StatusCode, body)
			}
			var e ErrorResponse
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("400 body is not an error envelope: %s", body)
			}
		})
	}
}

// --- degenerate-case parity: discover == bare endpoint, bit for bit ---

func TestDiscoverParityWithJoin(t *testing.T) {
	_, ts, gen := newTestServer(t, Config{})
	vals := gen.Tables[0].Columns[0].Values

	for _, c := range []struct {
		name     string
		join     JoinRequest
		discover DiscoverRequest
	}{
		{
			"overlap",
			JoinRequest{Values: vals, K: 7},
			DiscoverRequest{Values: vals, Relation: "join", K: 7},
		},
		{
			"containment",
			JoinRequest{Values: vals, K: 7, Mode: "containment", Threshold: 0.3},
			DiscoverRequest{Values: vals, Relation: "join", K: 7, Mode: "containment", Threshold: 0.3},
		},
	} {
		t.Run(c.name, func(t *testing.T) {
			jResp, jBody := postJSON(t, ts.URL+"/v1/join", c.join)
			dResp, dBody := postJSON(t, ts.URL+"/v1/discover", c.discover)
			if jResp.StatusCode != 200 || dResp.StatusCode != 200 {
				t.Fatalf("status join %d discover %d (%s / %s)", jResp.StatusCode, dResp.StatusCode, jBody, dBody)
			}
			if !bytes.Equal(jBody, dBody) {
				t.Errorf("discover join != /v1/join\n/v1/join:     %s\n/v1/discover: %s", jBody, dBody)
			}
		})
	}
}

func TestDiscoverParityWithUnion(t *testing.T) {
	_, ts, gen := newTestServer(t, Config{})
	qt := gen.Tables[0]

	for _, method := range []string{"tus", "santos", "starmie", "d3l"} {
		t.Run(method, func(t *testing.T) {
			uResp, uBody := postJSON(t, ts.URL+"/v1/union",
				UnionRequest{TableID: qt.ID, K: 6, Method: method})
			dResp, dBody := postJSON(t, ts.URL+"/v1/discover",
				DiscoverRequest{TableID: qt.ID, Relation: "union", K: 6, Method: method})
			if uResp.StatusCode != 200 || dResp.StatusCode != 200 {
				t.Fatalf("status union %d discover %d (%s / %s)", uResp.StatusCode, dResp.StatusCode, uBody, dBody)
			}
			if !bytes.Equal(uBody, dBody) {
				t.Errorf("discover union != /v1/union (%s)\n/v1/union:    %s\n/v1/discover: %s", method, uBody, dBody)
			}
		})
	}
}

// --- predicates, explain, and the wire shape ---

func TestDiscoverPredicatesAndExplain(t *testing.T) {
	_, ts, gen := newTestServer(t, Config{})
	qt := gen.Tables[0]

	req := DiscoverRequest{
		TableID:  qt.ID,
		Relation: "union",
		K:        5,
		Predicates: discover.Predicates{
			MinRows:     1,
			ColumnNames: []string{qt.Columns[0].Name},
		},
		Explain: true,
	}
	resp, body := postJSON(t, ts.URL+"/v1/discover", req)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out DiscoverResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Results == nil {
		t.Fatal("union-relation discover returned no results field")
	}
	if len(out.Explain) == 0 {
		t.Fatal("explain requested but absent")
	}
	wantStages := []string{discover.StageMeta, discover.StageCandidates, discover.StageVerify}
	if len(out.Explain) != len(wantStages) {
		t.Fatalf("explain stages = %+v, want %v", out.Explain, wantStages)
	}
	for i, st := range out.Explain {
		if st.Stage != wantStages[i] {
			t.Errorf("stage %d = %q, want %q", i, st.Stage, wantStages[i])
		}
	}
	// Without explain the block is absent from the wire entirely.
	req.Explain = false
	_, body = postJSON(t, ts.URL+"/v1/discover", req)
	if strings.Contains(string(body), "explain") {
		t.Errorf("explain=false response still carries an explain block: %s", body)
	}
}

func TestDiscoverAnyRelation(t *testing.T) {
	_, ts, gen := newTestServer(t, Config{})
	qt := gen.Tables[0]
	resp, body := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{TableID: qt.ID, K: 10})
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out DiscoverResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Results == nil || len(*out.Results) == 0 {
		t.Fatalf("any-relation discover found nothing: %s", body)
	}
	for _, r := range *out.Results {
		if r.TableID == qt.ID {
			t.Errorf("seed table %s in its own results", qt.ID)
		}
	}
}

func TestDiscoverUnknownTable(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{TableID: "no-such-table", K: 5})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d (%s), want 404", resp.StatusCode, body)
	}
}

// --- caching ---

func TestDiscoverCache(t *testing.T) {
	_, ts, gen := newTestServer(t, Config{CacheEntries: 64})
	qt := gen.Tables[0]

	// table_id seeds cache: MISS then bit-identical HIT.
	req := DiscoverRequest{TableID: qt.ID, Relation: "union", K: 5,
		Predicates: discover.Predicates{MinRows: 1}}
	r1, b1 := postJSON(t, ts.URL+"/v1/discover", req)
	r2, b2 := postJSON(t, ts.URL+"/v1/discover", req)
	if r1.Header.Get("X-Cache") != "MISS" || r2.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("X-Cache = %q then %q, want MISS then HIT", r1.Header.Get("X-Cache"), r2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("cache HIT body differs:\n%s\n%s", b1, b2)
	}

	// Inline and values seeds bypass the response cache (the key would
	// need the whole table hashed in).
	r3, _ := postJSON(t, ts.URL+"/v1/discover",
		DiscoverRequest{Values: qt.Columns[0].Values, Relation: "join", K: 5})
	if got := r3.Header.Get("X-Cache"); got != "BYPASS" {
		t.Errorf("values-seed X-Cache = %q, want BYPASS", got)
	}
}

// --- satellite: per-stage observability ---

func TestDiscoverStageStatsAndMetrics(t *testing.T) {
	_, ts, gen := newTestServer(t, Config{})
	qt := gen.Tables[0]
	postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{TableID: qt.ID, Relation: "union", K: 5,
		Predicates: discover.Predicates{MinRows: 1}})

	resp, body := getBody(t, ts.URL+"/stats")
	if resp.StatusCode != 200 {
		t.Fatalf("/stats status = %d", resp.StatusCode)
	}
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	ep, ok := st.Endpoints["discover"]
	if !ok || ep.Requests == 0 {
		t.Errorf("discover endpoint stats missing or zero: %+v", st.Endpoints)
	}
	meta, ok := st.Discover[discover.StageMeta]
	if !ok || meta.CandidatesIn == 0 {
		t.Errorf("discover stage stats for %s missing or zero: %+v", discover.StageMeta, st.Discover)
	}
	if meta.EstOut == 0 {
		t.Errorf("meta stage est_out total is zero: %+v", meta)
	}
	verify, ok := st.Discover[discover.StageVerify]
	if !ok || verify.CandidatesIn == 0 {
		t.Errorf("discover stage stats for %s missing or zero: %+v", discover.StageVerify, st.Discover)
	}

	resp, body = getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	for _, want := range []string{
		"lakeserved_discover_stage_seconds",
		"lakeserved_discover_stage_candidates_in_total",
		"lakeserved_discover_stage_candidates_out_total",
		"lakeserved_discover_stage_est_out_total",
		"lakeserved_discover_stage_est_abs_err_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}
