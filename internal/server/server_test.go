package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tablehound/internal/core"
	"tablehound/internal/datagen"
	"tablehound/internal/lake"
)

// The demo system is expensive to build, so all tests share one.
// Server instances are cheap and each test makes its own.
var (
	sysOnce sync.Once
	sysVal  *core.System
	genVal  *datagen.Lake
)

func demoSystem(t *testing.T) (*core.System, *datagen.Lake) {
	t.Helper()
	sysOnce.Do(func() {
		gen := datagen.Generate(datagen.Config{
			Seed:              51,
			NumDomains:        12,
			DomainSize:        80,
			NumTemplates:      5,
			TablesPerTemplate: 4,
		})
		cat := lake.NewCatalog()
		for _, tbl := range gen.Tables {
			if err := cat.Add(tbl); err != nil {
				panic(err)
			}
		}
		sys, err := core.Build(cat, core.Options{KB: gen.BuildKB(0.8), Seed: 3})
		if err != nil {
			panic(err)
		}
		sysVal, genVal = sys, gen
	})
	return sysVal, genVal
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *datagen.Lake) {
	t.Helper()
	sys, gen := demoSystem(t)
	srv := New(sys, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, gen
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	resp, out, err := postRaw(url, body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// postRaw is the goroutine-safe variant: it reports failures as an
// error instead of calling into testing.T.
func postRaw(url string, body any) (*http.Response, []byte, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return nil, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return nil, nil, err
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, nil, err
	}
	return resp, out, nil
}

func TestEndpointsHappyPath(t *testing.T) {
	srv, ts, gen := newTestServer(t, Config{CacheEntries: 256})
	qt := gen.Tables[0]

	t.Run("join overlap", func(t *testing.T) {
		resp, body := postJSON(t, ts.URL+"/v1/join", JoinRequest{Values: qt.Columns[0].Values, K: 5})
		if resp.StatusCode != 200 {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var out JoinResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if len(out.Matches) == 0 {
			t.Fatal("no matches")
		}
		if out.Matches[0].Containment < 0.99 {
			t.Errorf("top containment = %v, the column itself is indexed", out.Matches[0].Containment)
		}
	})

	t.Run("join containment", func(t *testing.T) {
		resp, body := postJSON(t, ts.URL+"/v1/join",
			JoinRequest{Values: qt.Columns[0].Values, K: 5, Mode: "containment", Threshold: 0.5})
		if resp.StatusCode != 200 {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var out JoinResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if len(out.Matches) == 0 {
			t.Fatal("no containment matches")
		}
	})

	for _, method := range []string{"tus", "santos", "starmie", "d3l"} {
		t.Run("union "+method, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/union",
				UnionRequest{TableID: qt.ID, K: 3, Method: method})
			if resp.StatusCode != 200 {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			var out UnionResponse
			if err := json.Unmarshal(body, &out); err != nil {
				t.Fatal(err)
			}
			if len(out.Results) == 0 {
				t.Fatalf("%s found nothing", method)
			}
		})
	}

	t.Run("union inline table", func(t *testing.T) {
		inline := &InlineTable{ID: "q", Name: qt.Name}
		for _, c := range qt.Columns {
			inline.Columns = append(inline.Columns, InlineColumn{Name: c.Name, Values: c.Values})
		}
		resp, body := postJSON(t, ts.URL+"/v1/union", UnionRequest{Table: inline, K: 3})
		if resp.StatusCode != 200 {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Cache"); got != "BYPASS" {
			t.Errorf("inline table X-Cache = %q, want BYPASS", got)
		}
	})

	t.Run("keyword meta and values", func(t *testing.T) {
		topic := gen.DomainNames[gen.Templates[0].Domains[0]]
		resp, body := postJSON(t, ts.URL+"/v1/keyword", KeywordRequest{Query: topic, K: 5})
		if resp.StatusCode != 200 {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var out KeywordResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if len(out.Results) == 0 {
			t.Fatal("no keyword results")
		}
		val := qt.Columns[0].Values[0]
		resp, body = postJSON(t, ts.URL+"/v1/keyword", KeywordRequest{Query: val, K: 5, Mode: "values"})
		if resp.StatusCode != 200 {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if len(out.Clusters) == 0 {
			t.Fatal("no value clusters")
		}
	})

	t.Run("healthz stats metrics", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h HealthResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if h.Status != "ok" || h.Tables == 0 {
			t.Errorf("healthz = %+v", h)
		}

		st, err := NewClient(ts.URL).Stats(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if st.Lake.Tables != h.Tables {
			t.Errorf("stats tables %d != healthz tables %d", st.Lake.Tables, h.Tables)
		}
		if st.Endpoints["join"].Requests == 0 {
			t.Error("join requests not counted")
		}
		if st.Endpoints["join"].P50Ms <= 0 {
			t.Error("join latency quantile missing")
		}

		resp, err = http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		metrics, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		for _, want := range []string{
			`lakeserved_requests_total{endpoint="join"}`,
			`lakeserved_request_seconds{endpoint="union",quantile="0.99"}`,
			"lakeserved_inflight",
			"lakeserved_cache_hit_ratio",
			"lakeserved_shed_total",
		} {
			if !strings.Contains(string(metrics), want) {
				t.Errorf("metrics missing %q", want)
			}
		}
	})

	_ = srv
}

func TestBadRequestsAndErrorMapping(t *testing.T) {
	_, ts, gen := newTestServer(t, Config{})

	check := func(name string, wantStatus int, do func() *http.Response) {
		t.Run(name, func(t *testing.T) {
			resp := do()
			defer resp.Body.Close()
			if resp.StatusCode != wantStatus {
				body, _ := io.ReadAll(resp.Body)
				t.Errorf("status = %d, want %d (%s)", resp.StatusCode, wantStatus, body)
			}
			var e ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&e); err == nil && e.Error == "" && wantStatus >= 400 {
				t.Error("error response without an error message")
			}
		})
	}
	post := func(path string, body any) *http.Response {
		b, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	check("malformed JSON", 400, func() *http.Response {
		resp, err := http.Post(ts.URL+"/v1/join", "application/json", strings.NewReader("{nope"))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	})
	check("GET on query endpoint", 405, func() *http.Response {
		resp, err := http.Get(ts.URL + "/v1/join")
		if err != nil {
			t.Fatal(err)
		}
		return resp
	})
	check("empty join values", 400, func() *http.Response {
		return post("/v1/join", JoinRequest{Values: nil, K: 5})
	})
	check("whitespace join values", 400, func() *http.Response {
		return post("/v1/join", JoinRequest{Values: []string{" ", "\t"}, K: 5})
	})
	check("unknown join mode", 400, func() *http.Response {
		return post("/v1/join", JoinRequest{Values: []string{"x"}, K: 5, Mode: "fuzzy"})
	})
	check("unknown union method", 400, func() *http.Response {
		return post("/v1/union", UnionRequest{TableID: gen.Tables[0].ID, K: 3, Method: "magic"})
	})
	check("union without table", 400, func() *http.Response {
		return post("/v1/union", UnionRequest{K: 3})
	})
	check("union with both table and id", 400, func() *http.Response {
		return post("/v1/union", UnionRequest{TableID: "x", Table: &InlineTable{}, K: 3})
	})
	check("union unknown table id", 404, func() *http.Response {
		return post("/v1/union", UnionRequest{TableID: "no-such-table", K: 3})
	})
	check("union ragged inline table", 400, func() *http.Response {
		return post("/v1/union", UnionRequest{K: 3, Table: &InlineTable{Columns: []InlineColumn{
			{Name: "a", Values: []string{"1", "2"}},
			{Name: "b", Values: []string{"1"}},
		}}})
	})
	check("empty keyword query", 400, func() *http.Response {
		return post("/v1/keyword", KeywordRequest{Query: "   ", K: 5})
	})
	check("unknown keyword mode", 400, func() *http.Response {
		return post("/v1/keyword", KeywordRequest{Query: "x", K: 5, Mode: "regex"})
	})
	check("unknown path", 404, func() *http.Response {
		resp, err := http.Get(ts.URL + "/v1/nope")
		if err != nil {
			t.Fatal(err)
		}
		return resp
	})
}

// TestCacheParity is the serving-layer correctness contract: responses
// with the cache enabled are bit-identical to responses with it
// disabled, and a repeated query is a bit-identical HIT.
func TestCacheParity(t *testing.T) {
	_, tsCached, gen := newTestServer(t, Config{CacheEntries: 512})
	_, tsPlain, _ := newTestServer(t, Config{CacheEntries: 0})

	rng := rand.New(rand.NewSource(7))
	type query struct {
		path string
		body any
	}
	var queries []query
	for i := 0; i < 20; i++ {
		tbl := gen.Tables[rng.Intn(len(gen.Tables))]
		col := tbl.Columns[rng.Intn(len(tbl.Columns))]
		switch rng.Intn(4) {
		case 0:
			queries = append(queries, query{"/v1/join", JoinRequest{Values: col.Values, K: 1 + rng.Intn(10)}})
		case 1:
			queries = append(queries, query{"/v1/join",
				JoinRequest{Values: col.Values, K: 1 + rng.Intn(10), Mode: "containment", Threshold: 0.3}})
		case 2:
			queries = append(queries, query{"/v1/union",
				UnionRequest{TableID: tbl.ID, K: 1 + rng.Intn(5), Method: []string{"tus", "santos", "starmie", "d3l"}[rng.Intn(4)]}})
		default:
			queries = append(queries, query{"/v1/keyword",
				KeywordRequest{Query: col.Values[0], K: 1 + rng.Intn(10), Mode: []string{"meta", "values"}[rng.Intn(2)]}})
		}
	}

	for i, q := range queries {
		respCold, bodyCold := postJSON(t, tsCached.URL+q.path, q.body)
		respWarm, bodyWarm := postJSON(t, tsCached.URL+q.path, q.body)
		respPlain, bodyPlain := postJSON(t, tsPlain.URL+q.path, q.body)
		if respCold.StatusCode != 200 || respWarm.StatusCode != 200 || respPlain.StatusCode != 200 {
			t.Fatalf("query %d (%s %+v): statuses %d/%d/%d", i, q.path, q.body,
				respCold.StatusCode, respWarm.StatusCode, respPlain.StatusCode)
		}
		if respCold.Header.Get("X-Cache") != "MISS" {
			t.Errorf("query %d: first hit X-Cache = %q, want MISS", i, respCold.Header.Get("X-Cache"))
		}
		if respWarm.Header.Get("X-Cache") != "HIT" {
			t.Errorf("query %d: repeat X-Cache = %q, want HIT", i, respWarm.Header.Get("X-Cache"))
		}
		if !bytes.Equal(bodyCold, bodyWarm) {
			t.Errorf("query %d: cached response differs from original:\n%s\nvs\n%s", i, bodyCold, bodyWarm)
		}
		if !bytes.Equal(bodyCold, bodyPlain) {
			t.Errorf("query %d: cache-enabled response differs from cache-disabled:\n%s\nvs\n%s", i, bodyCold, bodyPlain)
		}
	}
}

func TestAdmissionSheds429(t *testing.T) {
	sys, gen := demoSystem(t)
	srv := New(sys, Config{MaxInFlight: 1, MaxQueue: 1, CacheEntries: 0})
	started := make(chan struct{}, 8)
	block := make(chan struct{})
	srv.testHookQueryStart = func() {
		started <- struct{}{}
		<-block
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer close(block)

	req := JoinRequest{Values: gen.Tables[0].Columns[0].Values, K: 3}
	respCh := make(chan int, 2)
	send := func() {
		resp, _, err := postRaw(ts.URL+"/v1/join", req)
		if err != nil {
			respCh <- 0
			return
		}
		respCh <- resp.StatusCode
	}
	// First request takes the only execution slot...
	go send()
	<-started
	// ...second fills the only queue slot...
	go send()
	waitFor(t, func() bool { return srv.queued.Value() == 1 })

	// ...third must be shed immediately.
	resp, body := postJSON(t, ts.URL+"/v1/join", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if srv.shed.Value() != 1 {
		t.Errorf("shed counter = %d", srv.shed.Value())
	}

	// Unblock; both held requests finish OK.
	block <- struct{}{}
	block <- struct{}{}
	<-started // the queued request reaches the hook after a slot frees
	for i := 0; i < 2; i++ {
		if code := <-respCh; code != 200 {
			t.Errorf("held request %d finished with %d", i, code)
		}
	}
}

func TestQueryTimeout(t *testing.T) {
	sys, gen := demoSystem(t)
	srv := New(sys, Config{QueryTimeout: 20 * time.Millisecond})
	release := make(chan struct{})
	srv.testHookQueryStart = func() { <-release }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer close(release)

	resp, body := postJSON(t, ts.URL+"/v1/join", JoinRequest{Values: gen.Tables[0].Columns[0].Values, K: 3})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", resp.StatusCode, body)
	}
	if srv.timeouts.Value() != 1 {
		t.Errorf("timeout counter = %d", srv.timeouts.Value())
	}
}

func TestQueryPanicBecomes500(t *testing.T) {
	sys, gen := demoSystem(t)
	srv := New(sys, Config{})
	fire := true
	srv.testHookQueryStart = func() {
		if fire {
			fire = false
			panic("boom")
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := JoinRequest{Values: gen.Tables[0].Columns[0].Values, K: 3}
	resp, body := postJSON(t, ts.URL+"/v1/join", req)
	if resp.StatusCode != 500 {
		t.Fatalf("status = %d (%s), want 500", resp.StatusCode, body)
	}
	// The server survived and serves the next request.
	resp, body = postJSON(t, ts.URL+"/v1/join", req)
	if resp.StatusCode != 200 {
		t.Fatalf("after panic: status = %d (%s)", resp.StatusCode, body)
	}
}

func TestShutdownDrains(t *testing.T) {
	sys, gen := demoSystem(t)
	srv := New(sys, Config{DrainTimeout: 5 * time.Second})
	started := make(chan struct{}, 1)
	block := make(chan struct{})
	srv.testHookQueryStart = func() {
		started <- struct{}{}
		<-block
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := JoinRequest{Values: gen.Tables[0].Columns[0].Values, K: 3}
	inFlight := make(chan int, 1)
	go func() {
		resp, _, err := postRaw(ts.URL+"/v1/join", req)
		if err != nil {
			inFlight <- 0
			return
		}
		inFlight <- resp.StatusCode
	}()
	<-started

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(context.Background()) }()
	waitFor(t, func() bool { return srv.draining.Load() })

	// New requests are refused while draining.
	resp, body := postJSON(t, ts.URL+"/v1/join", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("during drain: status = %d (%s), want 503", resp.StatusCode, body)
	}

	// The in-flight request completes and shutdown then succeeds.
	close(block)
	if code := <-inFlight; code != 200 {
		t.Errorf("in-flight request finished with %d", code)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("shutdown after drain: %v", err)
	}
}

func TestShutdownDrainDeadline(t *testing.T) {
	sys, gen := demoSystem(t)
	srv := New(sys, Config{DrainTimeout: 30 * time.Millisecond})
	started := make(chan struct{}, 1)
	block := make(chan struct{})
	srv.testHookQueryStart = func() {
		started <- struct{}{}
		<-block
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer close(block)

	go postRaw(ts.URL+"/v1/join", JoinRequest{Values: gen.Tables[0].Columns[0].Values, K: 3})
	<-started
	if err := srv.Shutdown(context.Background()); err == nil {
		t.Error("shutdown with a stuck query should report the drain deadline")
	}
}

// TestConcurrentHammer drives every endpoint from 32 clients against
// one server — mixed cache hits and misses — while the lake snapshot
// is concurrently swapped. Run under -race this is the serving
// layer's thread-safety contract.
func TestConcurrentHammer(t *testing.T) {
	sys, gen := demoSystem(t)
	srv := New(sys, Config{
		MaxInFlight:  8,
		MaxQueue:     4096,
		CacheEntries: 256,
		QueryTimeout: time.Minute,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const clients = 32
	perClient := 12
	if testing.Short() {
		perClient = 4
	}

	var wg sync.WaitGroup
	errCh := make(chan error, clients*perClient)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < perClient; i++ {
				tbl := gen.Tables[rng.Intn(len(gen.Tables))]
				var (
					path string
					body any
				)
				switch rng.Intn(4) {
				case 0:
					path, body = "/v1/join", JoinRequest{Values: tbl.Columns[0].Values, K: 5}
				case 1:
					path, body = "/v1/union", UnionRequest{TableID: tbl.ID, K: 3,
						Method: []string{"tus", "starmie", "d3l"}[rng.Intn(3)]}
				case 2:
					path, body = "/v1/keyword", KeywordRequest{Query: tbl.Columns[0].Values[0], K: 5}
				default:
					// Mix in observability reads.
					for _, p := range []string{"/stats", "/metrics", "/healthz"} {
						resp, err := http.Get(ts.URL + p)
						if err != nil {
							errCh <- err
							return
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if resp.StatusCode != 200 {
							errCh <- fmt.Errorf("%s: status %d", p, resp.StatusCode)
						}
					}
					continue
				}
				b, _ := json.Marshal(body)
				resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
				if err != nil {
					errCh <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					errCh <- fmt.Errorf("%s: status %d", path, resp.StatusCode)
				}
			}
		}(c)
	}
	// Concurrent snapshot swaps: same system, new generation — the
	// cache must purge and requests must keep succeeding.
	swapDone := make(chan struct{})
	go func() {
		defer close(swapDone)
		for i := 0; i < 5; i++ {
			time.Sleep(10 * time.Millisecond)
			srv.Swap(sys)
		}
	}()
	wg.Wait()
	<-swapDone
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if srv.swaps.Value() != 5 {
		t.Errorf("swaps = %d", srv.swaps.Value())
	}
	st := srv.CacheStats()
	if st.Hits+st.Misses == 0 {
		t.Error("hammer never touched the cache")
	}
}

// TestClientRoundTrip exercises the typed client against a live
// server, including its error mapping.
func TestClientRoundTrip(t *testing.T) {
	_, ts, gen := newTestServer(t, Config{CacheEntries: 64})
	c := NewClient(ts.URL)
	ctx := context.Background()

	jr, err := c.Join(ctx, JoinRequest{Values: gen.Tables[0].Columns[0].Values, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(jr.Matches) == 0 {
		t.Error("client join: no matches")
	}
	ur, err := c.Union(ctx, UnionRequest{TableID: gen.Tables[0].ID, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(ur.Results) == 0 {
		t.Error("client union: no results")
	}
	if _, err := c.Keyword(ctx, KeywordRequest{Query: "   "}); err == nil {
		t.Error("bad query should surface as client error")
	} else {
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != 400 {
			t.Errorf("err = %v, want APIError with status 400", err)
		}
	}
	h, err := c.Healthz(ctx)
	if err != nil || h.Status != "ok" {
		t.Errorf("healthz = %+v, %v", h, err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
