package server

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tablehound/internal/discover"
)

// --- cost-ordered planner: HTTP byte parity with the fixed order ---

// TestDiscoverPlannerOrderByteParity pins that the cost-based planner
// is invisible on the wire: a server with the default (cost) ordering
// and one pinned to the fixed order answer every discover request with
// identical bytes (explain off — stage rows legitimately differ).
func TestDiscoverPlannerOrderByteParity(t *testing.T) {
	_, costTS, gen := newTestServer(t, Config{})
	_, fixedTS, _ := newTestServer(t, Config{FixedOrderPlanner: true})
	qt := gen.Tables[0]
	vals := qt.Columns[0].Values

	cases := []struct {
		name string
		req  DiscoverRequest
	}{
		{"join with meta+keyword", DiscoverRequest{Values: vals, Relation: "join", K: 5,
			Predicates: discover.Predicates{MinRows: 1, Keywords: "template0"}}},
		{"join containment predicated", DiscoverRequest{Values: vals, Relation: "join", K: 5,
			Mode: "containment", Threshold: 0.3,
			Predicates: discover.Predicates{ColumnNames: []string{qt.Columns[0].Name}}}},
		{"union all groups", DiscoverRequest{TableID: qt.ID, Relation: "union", K: 5,
			Predicates: discover.Predicates{MinRows: 1, Keywords: "template1",
				Values: []string{gen.Tables[2].Columns[0].Values[0]}}}},
		{"any with values", DiscoverRequest{TableID: qt.ID, K: 5,
			Predicates: discover.Predicates{Values: []string{gen.Tables[1].Columns[0].Values[0]}}}},
		{"no predicates", DiscoverRequest{TableID: qt.ID, Relation: "union", K: 5}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cResp, cBody := postJSON(t, costTS.URL+"/v1/discover", c.req)
			fResp, fBody := postJSON(t, fixedTS.URL+"/v1/discover", c.req)
			if cResp.StatusCode != fResp.StatusCode {
				t.Fatalf("status: cost %d, fixed %d", cResp.StatusCode, fResp.StatusCode)
			}
			if !bytes.Equal(cBody, fBody) {
				t.Errorf("bytes diverged:\ncost  %s\nfixed %s", cBody, fBody)
			}
		})
	}
}

// TestDiscoverExplainEstimates checks the wire explain block carries
// the cost-model fields: prefilter rows have est_out, a provably-total
// stage reads skipped, and the selective keyword ran first.
func TestDiscoverExplainEstimates(t *testing.T) {
	_, ts, gen := newTestServer(t, Config{})
	qt := gen.Tables[0]
	resp, body := postJSON(t, ts.URL+"/v1/discover", DiscoverRequest{
		TableID: qt.ID, Relation: "union", K: 5, Explain: true,
		Predicates: discover.Predicates{MinRows: 1, Keywords: "template0"},
	})
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out DiscoverResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Explain) == 0 {
		t.Fatal("no explain block")
	}
	if out.Explain[0].Stage != discover.StageKeyword {
		t.Errorf("first stage = %s, want the selective keyword first", out.Explain[0].Stage)
	}
	var sawSkip, sawEst bool
	for _, st := range out.Explain {
		if st.Stage == discover.StageMeta && st.Skipped {
			sawSkip = true
		}
		if st.Stage == discover.StageKeyword && st.EstOut > 0 {
			sawEst = true
		}
	}
	if !sawSkip {
		t.Errorf("total min_rows=1 meta stage not skipped: %s", body)
	}
	if !sawEst {
		t.Errorf("keyword row carries no est_out: %s", body)
	}
	if !strings.Contains(string(body), "est_out") {
		t.Errorf("explain JSON lacks est_out field: %s", body)
	}
}
