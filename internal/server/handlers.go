package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"time"

	"tablehound/internal/join"
	"tablehound/internal/qcache"
	"tablehound/internal/table"
	"tablehound/internal/tokenize"
	"tablehound/internal/union"
)

// maxBodyBytes bounds request bodies; inline query tables fit well
// under this, and it keeps a misbehaving client from ballooning the
// heap.
const maxBodyBytes = 8 << 20

// maxK is the server-side top-k ceiling.
const maxK = 1000

// --- request / response types (shared with the client) ---

// JoinRequest asks for joinable columns for a query column.
type JoinRequest struct {
	// Values is the query column.
	Values []string `json:"values"`
	// K is required and must be positive (capped at the server's
	// maximum); omitting it is a bad query on every endpoint.
	K int `json:"k,omitempty"`
	// Mode is "overlap" (default; exact top-k by value overlap) or
	// "containment" (LSH Ensemble candidates above Threshold, exactly
	// verified).
	Mode string `json:"mode,omitempty"`
	// Threshold is the containment cutoff for mode "containment"
	// (default 0.5).
	Threshold float64 `json:"threshold,omitempty"`
}

// JoinMatch is one joinable column hit.
type JoinMatch struct {
	ColumnKey   string  `json:"column_key"`
	Overlap     int     `json:"overlap"`
	Containment float64 `json:"containment"`
	Jaccard     float64 `json:"jaccard"`
}

// JoinResponse is the /v1/join answer.
type JoinResponse struct {
	Matches []JoinMatch `json:"matches"`
}

// InlineColumn is one column of an inline query table.
type InlineColumn struct {
	Name   string   `json:"name"`
	Values []string `json:"values"`
}

// InlineTable carries a query table in the request body for union
// search against tables not in the lake.
type InlineTable struct {
	ID      string         `json:"id,omitempty"`
	Name    string         `json:"name,omitempty"`
	Columns []InlineColumn `json:"columns"`
}

// UnionRequest asks for unionable tables. Exactly one of TableID (a
// lake table) or Table (an inline query table) must be set.
type UnionRequest struct {
	TableID string       `json:"table_id,omitempty"`
	Table   *InlineTable `json:"table,omitempty"`
	K       int          `json:"k,omitempty"`
	// Method is "tus" (default), "santos", "starmie", or "d3l".
	Method string `json:"method,omitempty"`
}

// TableScore is one ranked table.
type TableScore struct {
	TableID string  `json:"table_id"`
	Score   float64 `json:"score"`
}

// UnionResponse is the /v1/union answer.
type UnionResponse struct {
	Results []TableScore `json:"results"`
}

// KeywordRequest asks for tables by keyword.
type KeywordRequest struct {
	Query string `json:"q"`
	K     int    `json:"k,omitempty"`
	// Mode is "meta" (default; BM25 over table metadata) or "values"
	// (keyword hits in cell values, grouped into same-schema
	// clusters).
	Mode string `json:"mode,omitempty"`
}

// ValueCluster is one same-schema group of value-search results.
type ValueCluster struct {
	Schema   []string `json:"schema"`
	TableIDs []string `json:"table_ids"`
	Score    float64  `json:"score"`
}

// KeywordResponse is the /v1/keyword answer; Results is set in mode
// "meta", Clusters in mode "values".
type KeywordResponse struct {
	Results  []TableScore   `json:"results,omitempty"`
	Clusters []ValueCluster `json:"clusters,omitempty"`
}

// HealthResponse is the /healthz answer. Generation is the snapshot
// generation (bumped on every Swap); Shard is present only on servers
// serving one shard of a partitioned lake — the router uses it to
// health-check upstreams and to refuse mixing shards built from
// different manifests.
type HealthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Tables        int     `json:"tables"`
	Generation    uint64  `json:"generation"`
	// DeltaDepth is the length of the delta chain merged into the
	// serving snapshot (0 when serving a plain base); a deep chain is a
	// signal to compact.
	DeltaDepth int `json:"delta_depth,omitempty"`
	// VecMode is how the serving snapshot's vector block is resident:
	// "mmap" (zero-copy, page-cache shared) or "heap".
	VecMode string       `json:"vec_mode,omitempty"`
	Shard   *ShardHealth `json:"shard,omitempty"`
}

// ShardHealth is the shard identity block of /healthz. The manifest
// hash travels as a hex string: JSON numbers cannot carry a uint64
// exactly.
type ShardHealth struct {
	Index        int    `json:"index"`
	Count        int    `json:"count"`
	ManifestHash string `json:"manifest_hash"`
}

// TableResponse is the /v1/table answer: one lake table in the inline
// form union queries accept, so a router can relocate a table_id query
// to shards that do not own the table.
type TableResponse struct {
	ID      string         `json:"id"`
	Name    string         `json:"name"`
	Columns []InlineColumn `json:"columns"`
}

// StatsResponse is the /stats answer.
type StatsResponse struct {
	UptimeSeconds float64                  `json:"uptime_seconds"`
	SnapshotGen   uint64                   `json:"snapshot_gen"`
	Lake          LakeStats                `json:"lake"`
	Cache         CacheStats               `json:"cache"`
	InFlight      int64                    `json:"inflight"`
	QueueDepth    int64                    `json:"queue_depth"`
	Shed          int64                    `json:"shed"`
	Timeouts      int64                    `json:"timeouts"`
	Panics        int64                    `json:"panics"`
	SnapshotSwaps int64                    `json:"snapshot_swaps"`
	VecStore      *VecStoreStats           `json:"vecstore,omitempty"`
	Delta         *DeltaStats              `json:"delta,omitempty"`
	Endpoints     map[string]EndpointStats `json:"endpoints"`
	// Discover summarizes the /v1/discover planner stages; stages that
	// have not run yet report zeros.
	Discover map[string]DiscoverStageStats `json:"discover,omitempty"`
}

// DiscoverStageStats is the per-stage /v1/discover summary: total
// candidates entering and surviving the stage since start, the
// planner's estimated survivors and cumulative absolute estimate
// error (prefilter stages only; zeros elsewhere), plus latency
// quantiles.
type DiscoverStageStats struct {
	CandidatesIn  int64   `json:"candidates_in"`
	CandidatesOut int64   `json:"candidates_out"`
	EstOut        int64   `json:"est_out"`
	EstAbsErr     int64   `json:"est_abs_err"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
}

// DeltaStats describes the delta chain merged into the serving
// snapshot; present only when the system carries lineage (loaded from
// a snapshot or a delta chain). Generations travel as hex strings:
// JSON numbers cannot carry a uint64 exactly.
type DeltaStats struct {
	// DeltaCount is the chain length (0 = serving a plain base).
	DeltaCount int `json:"delta_count"`
	// Tombstones is the total removed-table count across the chain.
	Tombstones int `json:"tombstones"`
	// LastCompactGen is the generation of the base the chain grows from
	// — what the most recent compaction (or initial build) produced.
	LastCompactGen string `json:"last_compact_gen"`
}

// VecStoreStats describes the serving system's shared vector block:
// residency mode, shape, on-disk bytes, and the coarse-quantizer
// footprint (0 when no centroid tables are attached).
type VecStoreStats struct {
	Mode          string `json:"mode"` // "heap" | "mmap"
	Vectors       int    `json:"vectors"`
	Dim           int    `json:"dim"`
	Segments      int    `json:"segments"`
	Bytes         int64  `json:"bytes"`
	CentroidBytes int64  `json:"centroid_bytes"`
}

// LakeStats mirrors lake.Stats for the wire.
type LakeStats struct {
	Tables         int `json:"tables"`
	Columns        int `json:"columns"`
	Rows           int `json:"rows"`
	DistinctValues int `json:"distinct_values"`
}

// CacheStats mirrors qcache.Stats plus the derived hit ratio.
type CacheStats struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	Entries   int     `json:"entries"`
	HitRatio  float64 `json:"hit_ratio"`
}

// EndpointStats is the per-endpoint serving summary.
type EndpointStats struct {
	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	QPS      float64 `json:"qps"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// --- endpoint handlers ---

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if !decodeBody(w, r, &req) {
		return
	}
	k, err := CheckK(req.K)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	modeByte, err := ParseJoinMode(req.Mode)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	threshold := req.Threshold
	if threshold <= 0 {
		threshold = 0.5
	}

	snap := s.snap.Load()
	key := s.joinKey(snap, modeByte, k, threshold, req.Values)
	s.serveQuery(w, r, key, func(ctx context.Context) (any, error) {
		var (
			ms  []join.Match
			err error
		)
		if modeByte == 0 {
			ms, err = snap.sys.JoinableColumns(req.Values, k)
		} else {
			q := snap.sys.Join.EncodeQuery(req.Values)
			if len(q.IDs) == 0 {
				return nil, fmt.Errorf("query column has no usable values: %w", table.ErrBadQuery)
			}
			ms, err = snap.sys.Join.ContainmentSearchQueryCtx(ctx, q, threshold, true)
			if err == nil && len(ms) > k {
				ms = ms[:k]
			}
		}
		if err != nil {
			return nil, err
		}
		out := make([]JoinMatch, len(ms))
		for i, m := range ms {
			out[i] = JoinMatch{
				ColumnKey: m.ColumnKey, Overlap: m.Overlap,
				Containment: m.Containment, Jaccard: m.Jaccard,
			}
		}
		return JoinResponse{Matches: out}, nil
	})
}

func (s *Server) handleUnion(w http.ResponseWriter, r *http.Request) {
	var req UnionRequest
	if !decodeBody(w, r, &req) {
		return
	}
	k, err := CheckK(req.K)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	methodByte, err := ParseUnionMethod(req.Method)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if (req.TableID == "") == (req.Table == nil) {
		writeError(w, http.StatusBadRequest, "exactly one of table_id or table must be set")
		return
	}

	snap := s.snap.Load()
	var key string
	resolve := func() (*table.Table, error) {
		if req.TableID != "" {
			t := snap.sys.Catalog.Table(req.TableID)
			if t == nil {
				return nil, fmt.Errorf("table %q: %w", req.TableID, errNotFound)
			}
			return t, nil
		}
		return inlineTable(req.Table)
	}
	if req.TableID != "" {
		// Inline tables are not cached: their content is the key and
		// hashing it wholesale buys little for one-off queries.
		var kb qcache.KeyBuilder
		kb.Byte('U').U64(snap.dataGen).Byte(methodByte).U32(uint32(k)).Str(req.TableID)
		key = kb.String()
	}
	s.serveQuery(w, r, key, func(ctx context.Context) (any, error) {
		q, err := resolve()
		if err != nil {
			return nil, err
		}
		var results []TableScore
		switch methodByte {
		case 0:
			rs, err := snap.sys.TUS.SearchCtx(ctx, q, k, union.EnsembleMeasure)
			if err != nil {
				return nil, err
			}
			results = unionScores(rs)
		case 1:
			rs, err := snap.sys.Santos.SearchCtx(ctx, q, k, union.Hybrid)
			if err != nil {
				return nil, err
			}
			results = unionScores(rs)
		case 2:
			rs, err := snap.sys.Starmie.SearchTables(q, k, 64, false)
			if err != nil {
				return nil, err
			}
			results = make([]TableScore, len(rs))
			for i, m := range rs {
				results[i] = TableScore{TableID: m.TableID, Score: m.Score}
			}
		default:
			rs, err := snap.sys.D3L.Search(q, k)
			if err != nil {
				return nil, err
			}
			results = unionScores(rs)
		}
		return UnionResponse{Results: results}, nil
	})
}

func (s *Server) handleKeyword(w http.ResponseWriter, r *http.Request) {
	var req KeywordRequest
	if !decodeBody(w, r, &req) {
		return
	}
	k, err := CheckK(req.K)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	modeByte, err := ParseKeywordMode(req.Mode)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	snap := s.snap.Load()
	var kb qcache.KeyBuilder
	kb.Byte('K').U64(snap.dataGen).Byte(modeByte).U32(uint32(k)).Str(req.Query)
	s.serveQuery(w, r, kb.String(), func(ctx context.Context) (any, error) {
		if modeByte == 0 {
			rs, err := snap.sys.KeywordSearch(req.Query, k)
			if err != nil {
				return nil, err
			}
			out := make([]TableScore, len(rs))
			for i, m := range rs {
				out[i] = TableScore{TableID: m.TableID, Score: m.Score}
			}
			return KeywordResponse{Results: out}, nil
		}
		cls, err := snap.sys.ValueSearch(req.Query, k)
		if err != nil {
			return nil, err
		}
		out := make([]ValueCluster, len(cls))
		for i, c := range cls {
			out[i] = ValueCluster{Schema: c.Schema, TableIDs: c.TableIDs, Score: c.Score}
		}
		return KeywordResponse{Clusters: out}, nil
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	resp := HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Tables:        snap.stats.Tables,
		Generation:    snap.gen,
		DeltaDepth:    snap.sys.Lineage.Depth(),
	}
	if v := snap.sys.Vecs; v != nil {
		resp.VecMode = "heap"
		if v.Mapped() {
			resp.VecMode = "mmap"
		}
	}
	if sh := s.cfg.Shard; sh != nil {
		resp.Shard = &ShardHealth{
			Index:        sh.Index,
			Count:        sh.Count,
			ManifestHash: fmt.Sprintf("%016x", sh.ManifestHash),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTable serves GET /v1/table?id=X: the named lake table in
// inline form. It reads the current snapshot without admission
// control — it is a catalog lookup, not a search.
func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET with an id parameter")
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		writeError(w, http.StatusBadRequest, "missing id parameter")
		return
	}
	snap := s.snap.Load()
	t := snap.sys.Catalog.Table(id)
	if t == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("table %q: not found", id))
		return
	}
	resp := TableResponse{ID: t.ID, Name: t.Name, Columns: make([]InlineColumn, len(t.Columns))}
	for i, c := range t.Columns {
		resp.Columns[i] = InlineColumn{Name: c.Name, Values: c.Values}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	cs := s.cache.Stats()
	uptime := time.Since(s.start).Seconds()
	eps := make(map[string]EndpointStats, len(s.endpoints))
	for name, m := range s.endpoints {
		reqs := m.requests.Value()
		qps := 0.0
		if uptime > 0 {
			qps = float64(reqs) / uptime
		}
		eps[name] = EndpointStats{
			Requests: reqs,
			Errors:   m.errors.Value(),
			QPS:      qps,
			P50Ms:    ms(m.latency.Quantile(0.5)),
			P95Ms:    ms(m.latency.Quantile(0.95)),
			P99Ms:    ms(m.latency.Quantile(0.99)),
		}
	}
	ds2 := make(map[string]DiscoverStageStats, len(s.stages))
	for name, m := range s.stages {
		ds2[name] = DiscoverStageStats{
			CandidatesIn:  m.in.Value(),
			CandidatesOut: m.out.Value(),
			EstOut:        m.estOut.Value(),
			EstAbsErr:     m.estErr.Value(),
			P50Ms:         ms(m.latency.Quantile(0.5)),
			P95Ms:         ms(m.latency.Quantile(0.95)),
		}
	}
	var vs *VecStoreStats
	if v := snap.sys.Vecs; v != nil {
		mode := "heap"
		if v.Mapped() {
			mode = "mmap"
		}
		vs = &VecStoreStats{
			Mode:          mode,
			Vectors:       v.Count(),
			Dim:           v.Dim(),
			Segments:      len(v.Segments()),
			Bytes:         v.DataBytes() + v.NormBytes(),
			CentroidBytes: v.CentroidBytes(),
		}
	}
	var ds *DeltaStats
	if lin := snap.sys.Lineage; lin != nil {
		ds = &DeltaStats{
			DeltaCount:     lin.Depth(),
			Tombstones:     lin.TombstoneCount(),
			LastCompactGen: fmt.Sprintf("%016x", lin.LastCompactGen()),
		}
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeSeconds: uptime,
		SnapshotGen:   snap.gen,
		VecStore:      vs,
		Delta:         ds,
		Lake: LakeStats{
			Tables:         snap.stats.Tables,
			Columns:        snap.stats.Columns,
			Rows:           snap.stats.Rows,
			DistinctValues: snap.stats.DistinctValues,
		},
		Cache: CacheStats{
			Hits: cs.Hits, Misses: cs.Misses, Evictions: cs.Evictions,
			Entries: cs.Entries, HitRatio: s.cache.HitRatio(),
		},
		InFlight:      s.inflight.Value(),
		QueueDepth:    s.queued.Value(),
		Shed:          s.shed.Value(),
		Timeouts:      s.timeouts.Value(),
		Panics:        s.panics.Value(),
		SnapshotSwaps: s.swaps.Value(),
		Endpoints:     eps,
		Discover:      ds2,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.reg.WriteText(w)
}

// --- helpers ---

// joinKey builds the cache key for a join query: the snapshot
// generation, mode, k, threshold, and the normalized distinct query
// values — in-vocabulary values as their stable dictionary ID,
// out-of-vocabulary ones as length-prefixed literals (ephemeral
// encoder IDs are not stable across queries and must not be keys).
// This matches exactly the information join.EncodeQuery extracts, so
// two requests with the same key provably produce the same result.
func (s *Server) joinKey(snap *snapshot, modeByte byte, k int, threshold float64, values []string) string {
	vals := tokenize.NormalizeSet(values)
	sort.Strings(vals)
	var kb qcache.KeyBuilder
	kb.Byte('J').U64(snap.dataGen).Byte(modeByte).U32(uint32(k))
	if modeByte == 1 {
		kb.U64(math.Float64bits(threshold))
	}
	d := snap.sys.Dict
	for _, v := range vals {
		if d != nil {
			if id, ok := d.ID(v); ok {
				kb.Byte(0).U32(id)
				continue
			}
		}
		kb.Byte(1).Str(v)
	}
	return kb.String()
}

func unionScores(rs []union.Result) []TableScore {
	out := make([]TableScore, len(rs))
	for i, r := range rs {
		out[i] = TableScore{TableID: r.TableID, Score: r.Score}
	}
	return out
}

// CheckK applies the server-side top-k policy: an absent or
// non-positive k is a bad query (wrapping table.ErrBadQuery → HTTP
// 400) on every endpoint, and k is capped at maxK. Exported so the
// shard-fanout router rejects and truncates with exactly the same
// policy as the shards it fans to.
func CheckK(k int) (int, error) {
	if k <= 0 {
		return 0, fmt.Errorf("k must be a positive integer (got %d): %w", k, table.ErrBadQuery)
	}
	if k > maxK {
		return maxK, nil
	}
	return k, nil
}

// ParseJoinMode maps the /v1/join mode string to its cache-key byte:
// "" or "overlap" → 0, "containment" → 1. Unknown strings wrap
// table.ErrBadQuery so every surface rejects them identically.
func ParseJoinMode(mode string) (byte, error) {
	switch mode {
	case "", "overlap":
		return 0, nil
	case "containment":
		return 1, nil
	}
	return 0, fmt.Errorf("unknown join mode %q (want overlap or containment): %w", mode, table.ErrBadQuery)
}

// ParseUnionMethod maps the /v1/union method string to its cache-key
// byte: "" or "tus" → 0, "santos" → 1, "starmie" → 2, "d3l" → 3.
// Unknown strings wrap table.ErrBadQuery.
func ParseUnionMethod(method string) (byte, error) {
	switch method {
	case "", "tus":
		return 0, nil
	case "santos":
		return 1, nil
	case "starmie":
		return 2, nil
	case "d3l":
		return 3, nil
	}
	return 0, fmt.Errorf("unknown union method %q (want tus, santos, starmie, or d3l): %w", method, table.ErrBadQuery)
}

// ParseKeywordMode maps the /v1/keyword mode string to its cache-key
// byte: "" or "meta" → 0, "values" → 1. Unknown strings wrap
// table.ErrBadQuery.
func ParseKeywordMode(mode string) (byte, error) {
	switch mode {
	case "", "meta":
		return 0, nil
	case "values":
		return 1, nil
	}
	return 0, fmt.Errorf("unknown keyword mode %q (want meta or values): %w", mode, table.ErrBadQuery)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// decodeBody enforces POST, bounds the body, and parses JSON. On
// failure it writes the error response and returns false.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST with a JSON body")
		return false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeError(w, http.StatusBadRequest, "parsing JSON body: "+err.Error())
		return false
	}
	return true
}
