package server

import (
	"strconv"
	"testing"
	"time"

	"tablehound/internal/obs"
)

// The Retry-After estimate: queued requests drain MaxInFlight at a
// time, each wave costs about one p95 service time, and the result is
// clamped to [1s, 60s].
func TestRetryAfterSeconds(t *testing.T) {
	s := &Server{cfg: Config{MaxInFlight: 4}}
	cases := []struct {
		name  string
		depth int
		p95   time.Duration
		want  int
	}{
		{"no history floors at 1s", 0, 0, 1},
		{"sub-second p95 floors at 1s", 3, 200 * time.Millisecond, 1},
		{"empty queue is one wave", 0, 2 * time.Second, 2},
		{"two full waves ahead", 8, 500 * time.Millisecond, 2},
		{"deep queue multiplies", 20, 2 * time.Second, 12},
		{"latency spike clamps at 60s", 40, 30 * time.Second, 60},
	}
	for _, c := range cases {
		if got := s.retryAfterSeconds(c.depth, c.p95); got != c.want {
			t.Errorf("%s: retryAfterSeconds(%d, %v) = %d, want %d", c.name, c.depth, c.p95, got, c.want)
		}
	}
}

// retryAfter derives its estimate from the observed service-time
// histogram: a server that has been slow tells shed clients to back
// off longer than a fast one.
func TestRetryAfterTracksServiceTime(t *testing.T) {
	mk := func(d time.Duration) *Server {
		s := &Server{
			cfg:     Config{MaxInFlight: 2, MaxQueue: 8},
			service: &obs.Histogram{},
		}
		s.lim = newLimiter(s.cfg.MaxInFlight, s.cfg.MaxQueue)
		for i := 0; i < 100; i++ {
			s.service.Observe(d)
		}
		return s
	}

	fast, err := strconv.Atoi(mk(time.Millisecond).retryAfter())
	if err != nil {
		t.Fatalf("retryAfter not an integer: %v", err)
	}
	slow, err := strconv.Atoi(mk(10 * time.Second).retryAfter())
	if err != nil {
		t.Fatalf("retryAfter not an integer: %v", err)
	}
	if fast != 1 {
		t.Errorf("fast server Retry-After = %d, want 1", fast)
	}
	// One wave of a ~10s p95; the histogram's log buckets cost ±15%.
	if slow < 8 || slow > 14 {
		t.Errorf("slow server Retry-After = %d, want roughly 10", slow)
	}
}

// New wires the service histogram: zero-value servers in the tests
// above construct it by hand, so make sure the real constructor does
// too (a nil histogram would panic the shed path).
func TestRetryAfterWiredByNew(t *testing.T) {
	sys, _ := demoSystem(t)
	s := New(sys, Config{})
	if s.service == nil {
		t.Fatal("New left the service histogram nil")
	}
	if got := s.retryAfter(); got != "1" {
		t.Errorf("fresh server retryAfter = %q, want \"1\"", got)
	}
}
