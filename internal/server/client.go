package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
)

// Client talks to a running lakeserved over HTTP. The zero value is
// not usable; construct with NewClient.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the given base address. addr may be
// "host:port" or a full "http://host:port" URL.
func NewClient(addr string) *Client {
	return NewClientHTTP(addr, &http.Client{})
}

// NewClientHTTP is NewClient with a caller-supplied http.Client, so
// the shard-fanout router can share one transport (and tests can
// inject an httptest one) across many shard clients.
func NewClientHTTP(addr string, h *http.Client) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{
		base: strings.TrimRight(addr, "/"),
		http: h,
	}
}

// APIError is a non-2xx answer from the server.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Status, e.Message)
}

// Join runs a joinable-column search.
func (c *Client) Join(ctx context.Context, req JoinRequest) (*JoinResponse, error) {
	var out JoinResponse
	if err := c.post(ctx, "/v1/join", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Union runs a unionable-table search.
func (c *Client) Union(ctx context.Context, req UnionRequest) (*UnionResponse, error) {
	var out UnionResponse
	if err := c.post(ctx, "/v1/union", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Keyword runs a keyword or value search.
func (c *Client) Keyword(ctx context.Context, req KeywordRequest) (*KeywordResponse, error) {
	var out KeywordResponse
	if err := c.post(ctx, "/v1/keyword", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Discover runs a conditional-discovery query.
func (c *Client) Discover(ctx context.Context, req DiscoverRequest) (*DiscoverResponse, error) {
	var out DiscoverResponse
	if err := c.post(ctx, "/v1/discover", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Table fetches one lake table in inline form.
func (c *Client) Table(ctx context.Context, id string) (*TableResponse, error) {
	var out TableResponse
	if err := c.get(ctx, "/v1/table?id="+url.QueryEscape(id), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches the live serving statistics.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var out StatsResponse
	if err := c.get(ctx, "/stats", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz checks server liveness.
func (c *Client) Healthz(ctx context.Context) (*HealthResponse, error) {
	var out HealthResponse
	if err := c.get(ctx, "/healthz", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

func (c *Client) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e ErrorResponse
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return &APIError{Status: resp.StatusCode, Message: e.Error}
		}
		return &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(body))}
	}
	return json.Unmarshal(body, out)
}
