package server

import (
	"context"

	"tablehound/internal/obs"
)

// limiter is the admission controller: a semaphore of execution slots
// plus a bounded wait queue. A request first tries to grab a slot; if
// none is free it joins the queue; if the queue is full it is shed
// immediately (the caller maps that to 429). Queued requests block
// until a slot frees or their context expires.
type limiter struct {
	slots chan struct{}
	queue chan struct{}
}

func newLimiter(maxInFlight, maxQueue int) *limiter {
	return &limiter{
		slots: make(chan struct{}, maxInFlight),
		queue: make(chan struct{}, maxQueue),
	}
}

// acquire obtains an execution slot, waiting in the bounded queue if
// necessary. On success it returns a release func that MUST be called
// exactly once when the query finishes. Returns errShed when the
// queue is full, or the context error if it expires while queued.
// depth, when non-nil, tracks the live queue length.
func (l *limiter) acquire(ctx context.Context, depth *obs.Gauge) (func(), error) {
	// Fast path: free slot right now.
	select {
	case l.slots <- struct{}{}:
		return l.release, nil
	default:
	}
	// Join the bounded queue or shed.
	select {
	case l.queue <- struct{}{}:
	default:
		return nil, errShed
	}
	if depth != nil {
		depth.Inc()
	}
	defer func() {
		<-l.queue
		if depth != nil {
			depth.Dec()
		}
	}()
	select {
	case l.slots <- struct{}{}:
		return l.release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (l *limiter) release() { <-l.slots }
