package server

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"tablehound/internal/obs"
)

// errSlotWait marks a request whose context expired while it waited in
// the admission queue. It is an overload signal — the query never ran —
// so the HTTP layer maps it to 503 + Retry-After rather than the 504
// reserved for queries that timed out while executing.
var errSlotWait = errors.New("server: timed out waiting for an execution slot")

// limiter is the admission controller: a fixed pool of execution slots
// plus a bounded FIFO wait queue. A request takes a free slot if the
// queue is empty; otherwise it queues behind earlier arrivals; if the
// queue is full it is shed immediately (the caller maps that to 429).
//
// Freed slots are handed directly to the queue head under the lock, so
// a fresh arrival can never steal a slot from a request that has been
// waiting — the starvation bug of the earlier channel-based design,
// where release() returned capacity to a shared channel and the fast
// path raced the queued waiters for it.
type limiter struct {
	mu       sync.Mutex
	free     int // execution slots not held by anyone
	maxQueue int
	waiters  []chan struct{} // FIFO; a granted waiter is removed before its channel is signaled
}

func newLimiter(maxInFlight, maxQueue int) *limiter {
	return &limiter{free: maxInFlight, maxQueue: maxQueue}
}

// acquire obtains an execution slot, waiting in the bounded FIFO queue
// if necessary. On success it returns a release func that MUST be
// called exactly once when the query finishes. Returns errShed when
// the queue is full, or an errSlotWait-wrapped context error if the
// context expires while queued. depth, when non-nil, tracks the live
// queue length.
func (l *limiter) acquire(ctx context.Context, depth *obs.Gauge) (func(), error) {
	l.mu.Lock()
	// A free slot goes to a fresh arrival only when nobody is queued;
	// with hand-off on release the two cannot coexist, but the guard
	// keeps the invariant local.
	if l.free > 0 && len(l.waiters) == 0 {
		l.free--
		l.mu.Unlock()
		return l.release, nil
	}
	if len(l.waiters) >= l.maxQueue {
		l.mu.Unlock()
		return nil, errShed
	}
	grant := make(chan struct{}, 1)
	l.waiters = append(l.waiters, grant)
	l.mu.Unlock()
	if depth != nil {
		depth.Inc()
		defer depth.Dec()
	}

	select {
	case <-grant:
		return l.release, nil
	case <-ctx.Done():
		l.mu.Lock()
		for i, w := range l.waiters {
			if w == grant {
				l.waiters = append(l.waiters[:i], l.waiters[i+1:]...)
				l.mu.Unlock()
				return nil, fmt.Errorf("%w: %v", errSlotWait, ctx.Err())
			}
		}
		// Not in the queue anymore: a concurrent release already granted
		// us the slot (the send happened under the lock, so it is in the
		// buffered channel by now). Consume it and pass it on so the slot
		// is not leaked.
		l.mu.Unlock()
		<-grant
		l.release()
		return nil, fmt.Errorf("%w: %v", errSlotWait, ctx.Err())
	}
}

// release returns a slot: to the queue head if anyone is waiting,
// otherwise back to the free pool.
func (l *limiter) release() {
	l.mu.Lock()
	if len(l.waiters) > 0 {
		grant := l.waiters[0]
		l.waiters = l.waiters[1:]
		grant <- struct{}{} // buffered; never blocks, even under the lock
		l.mu.Unlock()
		return
	}
	l.free++
	l.mu.Unlock()
}

// queueLen reports the current number of queued waiters (for tests).
func (l *limiter) queueLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.waiters)
}
