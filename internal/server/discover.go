package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"time"

	"tablehound/internal/discover"
	"tablehound/internal/qcache"
	"tablehound/internal/table"
)

// DiscoverRequest asks /v1/discover for tables conditionally: a
// relational seed (exactly one of table_id, table, or values) plus
// optional predicates restricting the result tables.
type DiscoverRequest struct {
	// TableID seeds from a lake table.
	TableID string `json:"table_id,omitempty"`
	// Table seeds from an inline query table.
	Table *InlineTable `json:"table,omitempty"`
	// Values seeds from a bare column (join relation only).
	Values []string `json:"values,omitempty"`
	// Column names the seed-table column feeding the join side;
	// empty picks the first usable column.
	Column string `json:"column,omitempty"`
	// Relation is "join", "union", or "any" (default).
	Relation string `json:"relation,omitempty"`
	// Mode is the join scoring mode: "overlap" (default) or
	// "containment".
	Mode string `json:"mode,omitempty"`
	// Method is the union engine: "tus" (default), "santos",
	// "starmie", or "d3l".
	Method string `json:"method,omitempty"`
	// Threshold is the containment cutoff (default 0.5).
	Threshold float64 `json:"threshold,omitempty"`
	// K is required and must be positive.
	K int `json:"k,omitempty"`
	// Predicates restrict which tables may appear in the results.
	Predicates discover.Predicates `json:"predicates"`
	// Explain asks for the per-stage explanation block.
	Explain bool `json:"explain,omitempty"`
}

// DiscoverResponse is the /v1/discover answer. Matches is set for the
// join relation, Results for union/any. Both are slice pointers so an
// unfiltered single-relation response marshals bit-identically to the
// corresponding bare JoinResponse/UnionResponse ("matches":[] vs the
// field being absent).
type DiscoverResponse struct {
	Matches *[]JoinMatch            `json:"matches,omitempty"`
	Results *[]TableScore           `json:"results,omitempty"`
	Explain []discover.StageExplain `json:"explain,omitempty"`
}

func (s *Server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	var req DiscoverRequest
	if !decodeBody(w, r, &req) {
		return
	}
	k, err := CheckK(req.K)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	rel, err := discover.ParseRelation(req.Relation)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	mode, err := discover.ParseJoinMode(req.Mode)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	method, err := discover.ParseUnionMethod(req.Method)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	seeds := 0
	if req.TableID != "" {
		seeds++
	}
	if req.Table != nil {
		seeds++
	}
	if len(req.Values) > 0 {
		seeds++
	}
	if seeds != 1 {
		writeError(w, http.StatusBadRequest, "exactly one of table_id, table, or values must be set")
		return
	}

	snap := s.snap.Load()
	// Like /v1/union, only table_id seeds are cached: inline tables
	// and bare value columns would need their whole content hashed
	// into the key.
	var key string
	if req.TableID != "" {
		key = discoverKey(snap, rel, mode, method, k, req)
	}
	s.serveQuery(w, r, key, func(ctx context.Context) (any, error) {
		q := discover.Query{
			Column:     req.Column,
			Relation:   req.Relation,
			Mode:       req.Mode,
			Method:     req.Method,
			Threshold:  req.Threshold,
			K:          k,
			Predicates: req.Predicates,
		}
		switch {
		case req.TableID != "":
			t := snap.sys.Catalog.Table(req.TableID)
			if t == nil {
				return nil, fmt.Errorf("table %q: %w", req.TableID, errNotFound)
			}
			q.Seed = t
		case req.Table != nil:
			t, err := inlineTable(req.Table)
			if err != nil {
				return nil, err
			}
			q.Seed = t
		default:
			q.Values = req.Values
		}
		ord := discover.OrderCost
		if s.cfg.FixedOrderPlanner {
			ord = discover.OrderFixed
		}
		plan, err := discover.NewPlanOrdered(snap.sys, q, ord)
		if err != nil {
			return nil, err
		}
		res, err := plan.ExecuteOpts(ctx, discover.ExecOptions{Cache: s.cache, Gen: snap.dataGen})
		if err != nil {
			return nil, err
		}
		s.observeStages(res.Explain)
		var resp DiscoverResponse
		if rel == discover.RelationJoin {
			out := make([]JoinMatch, len(res.Matches))
			for i, m := range res.Matches {
				out[i] = JoinMatch{
					ColumnKey: m.ColumnKey, Overlap: m.Overlap,
					Containment: m.Containment, Jaccard: m.Jaccard,
				}
			}
			resp.Matches = &out
		} else {
			out := unionScores(res.Tables)
			resp.Results = &out
		}
		if req.Explain {
			resp.Explain = res.Explain
		}
		return resp, nil
	})
}

// discoverKey builds the cache key for a table_id-seeded discover
// query: generation, relation/mode/method bytes, k, threshold, the
// explain flag, the seed coordinates, and the predicate block.
func discoverKey(snap *snapshot, rel discover.Relation, mode discover.JoinMode, method discover.UnionMethod, k int, req DiscoverRequest) string {
	preds, _ := json.Marshal(req.Predicates)
	threshold := req.Threshold
	if threshold <= 0 {
		threshold = 0.5
	}
	var explain byte
	if req.Explain {
		explain = 1
	}
	var kb qcache.KeyBuilder
	kb.Byte('D').U64(snap.dataGen).Byte(byte(rel)).Byte(byte(mode)).Byte(byte(method)).
		U32(uint32(k)).U64(math.Float64bits(threshold)).Byte(explain).
		Str(req.TableID).Str(req.Column).Str(string(preds))
	return kb.String()
}

// inlineTable materializes an inline request table, the same way
// /v1/union does.
func inlineTable(in *InlineTable) (*table.Table, error) {
	cols := make([]*table.Column, len(in.Columns))
	for i, c := range in.Columns {
		cols[i] = table.NewColumn(c.Name, c.Values)
	}
	id := in.ID
	if id == "" {
		id = "inline-query"
	}
	t, err := table.New(id, in.Name, cols)
	if err != nil {
		return nil, fmt.Errorf("inline table: %v: %w", err, table.ErrBadQuery)
	}
	return t, nil
}

// observeStages feeds one execution's explain block into the
// per-stage histograms, candidate-reduction counters, and
// estimate-quality counters. Cache hits skip this — the stages did
// not run. Estimates are recorded only for stages the planner priced
// (prefilters carry est_out; candidates/verify do not).
func (s *Server) observeStages(stages []discover.StageExplain) {
	for _, st := range stages {
		m := s.stages[st.Stage]
		if m == nil {
			continue
		}
		m.latency.Observe(time.Duration(st.ElapsedUS) * time.Microsecond)
		m.in.Add(int64(st.In))
		m.out.Add(int64(st.Out))
		switch st.Stage {
		case discover.StageMeta, discover.StageKeyword, discover.StageValues:
			m.estOut.Add(int64(st.EstOut))
			diff := int64(st.EstOut - st.Out)
			if diff < 0 {
				diff = -diff
			}
			m.estErr.Add(diff)
		}
	}
}
