package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tablehound/internal/core"
	"tablehound/internal/datagen"
	"tablehound/internal/lake"
	"tablehound/internal/table"
)

// deltaFixture builds a small base snapshot plus one add-delta on disk
// and returns three equivalent-or-related systems: the plain base, the
// base with the delta merged on top (chain), and the compacted fold of
// the chain. chain and compacted share a data generation; base has its
// own. added is one of the delta's tables, for queries that only the
// delta can answer.
func deltaFixture(t *testing.T) (base, chain, compacted *core.System, added *table.Table) {
	t.Helper()
	dir := t.TempDir()
	gen := datagen.Generate(datagen.Config{
		Seed:              77,
		NumDomains:        8,
		DomainSize:        60,
		NumTemplates:      3,
		TablesPerTemplate: 3,
	})
	tables := append([]*table.Table(nil), gen.Tables...)
	sort.Slice(tables, func(i, j int) bool { return tables[i].ID < tables[j].ID })
	baseTables, addTables := tables[:len(tables)-2], tables[len(tables)-2:]

	cat := lake.NewCatalog()
	if err := cat.AddBatch(baseTables); err != nil {
		t.Fatal(err)
	}
	built, err := core.Build(cat, core.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	basePath := filepath.Join(dir, "base.snap")
	if err := built.SaveFile(basePath); err != nil {
		t.Fatal(err)
	}
	d, err := core.BuildDelta(basePath, nil, addTables, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	deltaPath := filepath.Join(dir, "d1.thdb")
	if err := d.SaveFile(deltaPath); err != nil {
		t.Fatal(err)
	}
	base, err = core.LoadFile(basePath, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	chain, err = core.LoadChainFiles(basePath, []string{deltaPath}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	compacted, err = core.CompactFiles(basePath, []string{deltaPath}, filepath.Join(dir, "compacted.snap"), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return base, chain, compacted, addTables[0]
}

// TestDeltaSwapHammer keeps queries in flight while the serving
// snapshot swaps between the base, the delta chain, and the compacted
// fold — the live sequence of applying a delta and compacting it away.
// Every response must be a well-formed 200: queries see either the old
// or the new snapshot, never a torn mix. Run under -race (make race)
// this also proves the swap path publishes safely.
func TestDeltaSwapHammer(t *testing.T) {
	base, chain, compacted, added := deltaFixture(t)
	srv := New(base, Config{CacheEntries: 256})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	qvals := added.Columns[0].Values
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var failures atomic.Int64
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var resp *http.Response
				var err error
				if i%2 == 0 {
					resp, _, err = postRaw(ts.URL+"/v1/join", JoinRequest{Values: qvals, K: 5})
				} else {
					resp, _, err = postRaw(ts.URL+"/v1/keyword", KeywordRequest{Query: "record", K: 5})
				}
				if err != nil || resp.StatusCode != http.StatusOK {
					failures.Add(1)
					return
				}
			}
		}(i)
	}
	for round := 0; round < 20; round++ {
		for _, sys := range []*core.System{chain, compacted, base} {
			srv.Swap(sys)
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d queries failed while snapshots were swapping", n)
	}

	// Settle on the chain and check the delta's table is actually
	// answerable — the swap hammer must not have wedged the server.
	srv.Swap(chain)
	resp, body := postJSON(t, ts.URL+"/v1/join", JoinRequest{Values: qvals, K: 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-hammer join: status %d: %s", resp.StatusCode, body)
	}
	var jr JoinResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range jr.Matches {
		tid, _ := table.SplitColumnKey(m.ColumnKey)
		if tid == added.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("delta table %s not joinable after swap to chain: %+v", added.ID, jr.Matches)
	}
}

// TestSwapCachePurgeSemantics pins the generation-keyed cache policy:
// a swap to a system with the same data generation (compaction folding
// the serving chain) keeps every cache entry; a swap that changes the
// data generation purges.
func TestSwapCachePurgeSemantics(t *testing.T) {
	base, chain, compacted, _ := deltaFixture(t)
	srv := New(chain, Config{CacheEntries: 64})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	req := KeywordRequest{Query: "record", K: 5}
	get := func() string {
		t.Helper()
		resp, _, err := postRaw(ts.URL+"/v1/keyword", req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		return resp.Header.Get("X-Cache")
	}
	if c := get(); c != "MISS" {
		t.Fatalf("first query: X-Cache %q, want MISS", c)
	}
	if c := get(); c != "HIT" {
		t.Fatalf("repeat query: X-Cache %q, want HIT", c)
	}

	// Compaction: same data generation, cache survives the swap.
	srv.Swap(compacted)
	if c := get(); c != "HIT" {
		t.Fatalf("after equivalent swap: X-Cache %q, want HIT (cache must survive compaction)", c)
	}
	if n := srv.CacheStats().Entries; n == 0 {
		t.Fatal("cache purged on an equivalent swap")
	}

	// Different data generation: entries are stale, purge.
	srv.Swap(base)
	if c := get(); c != "MISS" {
		t.Fatalf("after data change: X-Cache %q, want MISS", c)
	}
}

// TestAdminCompactAndDeltaObservability exercises the compact admin
// endpoint and the delta fields on /healthz and /stats.
func TestAdminCompactAndDeltaObservability(t *testing.T) {
	_, chain, compacted, _ := deltaFixture(t)
	srv := New(chain, Config{CacheEntries: 64})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	getJSON := func(path string, v any) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}

	var hr HealthResponse
	getJSON("/healthz", &hr)
	if hr.DeltaDepth != 1 {
		t.Fatalf("healthz delta_depth = %d, want 1", hr.DeltaDepth)
	}
	var sr StatsResponse
	getJSON("/stats", &sr)
	if sr.Delta == nil {
		t.Fatal("stats: no delta block while serving a chain")
	}
	if sr.Delta.DeltaCount != 1 || sr.Delta.LastCompactGen == "" {
		t.Fatalf("stats delta block = %+v, want delta_count 1 and a last_compact_gen", sr.Delta)
	}

	// Without a compactor the endpoint is explicit about it.
	resp, err := http.Post(ts.URL+"/v1/admin/compact", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("compact without compactor: status %d, want 501", resp.StatusCode)
	}

	srv.SetCompactor(func() (*core.System, error) { return compacted, nil })
	resp, err = http.Post(ts.URL+"/v1/admin/compact", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var cr CompactResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact: status %d", resp.StatusCode)
	}
	if cr.DeltaDepth != 0 || cr.Tables == 0 {
		t.Fatalf("compact response = %+v, want delta_depth 0 and tables > 0", cr)
	}
	if got := srv.System(); got != compacted {
		t.Fatal("compact did not swap the merged system in")
	}
	hr = HealthResponse{}
	getJSON("/healthz", &hr)
	if hr.DeltaDepth != 0 {
		t.Fatalf("healthz delta_depth after compact = %d, want 0", hr.DeltaDepth)
	}
}
