// Package parallel provides the bounded worker pool used by the
// index-construction pipeline. It is a minimal errgroup: run n indexed
// tasks on at most w goroutines, return the first (lowest-index) error.
//
// The degenerate pool (workers <= 1) runs tasks sequentially on the
// calling goroutine in index order and stops at the first error — the
// exact historical single-threaded behavior — so callers can thread one
// parallelism knob through both code paths.
//
// Determinism contract: ForEach assigns work by index, so a caller that
// computes results into result[i] observes the same final state at any
// worker count; only completion order varies. Order-sensitive side
// effects (map insertion, appends) belong in a sequential commit pass
// after ForEach returns.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Limit resolves a requested worker count: n when positive, otherwise
// runtime.GOMAXPROCS(0).
func Limit(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Resolve resolves a parallelism knob with the Options convention
// shared by construction and query paths: 0 means GOMAXPROCS, any
// negative value means 1 (exact sequential execution), positive n
// means n workers.
func Resolve(n int) int {
	switch {
	case n == 0:
		return runtime.GOMAXPROCS(0)
	case n < 0:
		return 1
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on at most workers
// goroutines and returns the lowest-index error, or nil.
//
// With workers <= 1 the tasks run sequentially in index order on the
// calling goroutine, stopping at the first error. With workers > 1 all
// goroutines drain a shared index counter; after any task fails,
// remaining unstarted tasks are skipped (already running ones finish).
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		wg     sync.WaitGroup
	)
	firstErrIdx := n
	var firstErr error
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					failed.Store(true)
					mu.Lock()
					if i < firstErrIdx {
						firstErrIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Map runs fn over [0, n) with ForEach and collects the results in
// index order.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ForEachCtx is ForEach with cooperative cancellation: ctx is checked
// before each task starts, so a cancelled context aborts the remaining
// unstarted tasks and the call returns ctx.Err(). Tasks already running
// when the context is cancelled finish normally — fn itself never
// observes a half-cancelled state, preserving the determinism contract
// for every run that completes without error.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	if ctx == nil || ctx.Done() == nil {
		return ForEach(n, workers, fn)
	}
	return ForEach(n, workers, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return fn(i)
	})
}

// MapCtx runs fn over [0, n) with ForEachCtx and collects the results
// in index order. A cancelled context returns (nil, ctx.Err()).
func MapCtx[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachCtx(ctx, n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
