package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestLimit(t *testing.T) {
	if got := Limit(3); got != 3 {
		t.Errorf("Limit(3) = %d", got)
	}
	if got := Limit(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Limit(0) = %d, want GOMAXPROCS", got)
	}
	if got := Limit(-1); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Limit(-1) = %d, want GOMAXPROCS", got)
	}
}

func TestForEachSequentialOrder(t *testing.T) {
	var order []int
	err := ForEach(5, 1, func(i int) error {
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order = %v", order)
		}
	}
}

func TestForEachCoversAllIndexes(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		hit := make([]atomic.Bool, 100)
		if err := ForEach(100, workers, func(i int) error {
			if hit[i].Swap(true) {
				return errors.New("index run twice")
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hit {
			if !hit[i].Load() {
				t.Fatalf("workers=%d: index %d not run", workers, i)
			}
		}
	}
}

func TestForEachSequentialStopsAtError(t *testing.T) {
	boom := errors.New("boom")
	ran := 0
	err := ForEach(10, 1, func(i int) error {
		ran++
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran != 4 {
		t.Errorf("ran = %d tasks after error at index 3", ran)
	}
}

func TestForEachParallelLowestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	err := ForEach(2, 2, func(i int) error {
		if i == 0 {
			return errA
		}
		return errB
	})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want lowest-index error", err)
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { return errors.New("no") }); err != nil {
		t.Fatal(err)
	}
}

func TestMap(t *testing.T) {
	got, err := Map(4, 2, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map result %v", got)
		}
	}
	if _, err := Map(4, 2, func(i int) (int, error) { return 0, errors.New("x") }); err == nil {
		t.Fatal("Map should propagate error")
	}
}
