package qcache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetPutAndCounters(t *testing.T) {
	c := New(64)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", []byte("va"))
	got, ok := c.Get("a")
	if !ok || string(got) != "va" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	// Overwrite replaces the value.
	c.Put("a", []byte("vb"))
	if got, _ := c.Get("a"); string(got) != "vb" {
		t.Errorf("after overwrite Get = %q", got)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
	if r := c.HitRatio(); r < 0.66 || r > 0.67 {
		t.Errorf("hit ratio = %v, want 2/3", r)
	}
}

func TestLRUEviction(t *testing.T) {
	// Single-entry-per-shard capacity: 16 entries over 16 shards.
	c := New(16)
	// Fill well past capacity; evictions must occur and Len stay
	// bounded by capacity.
	for i := 0; i < 200; i++ {
		c.Put(fmt.Sprintf("key-%d", i), []byte{byte(i)})
	}
	if n := c.Len(); n > 16 {
		t.Errorf("Len = %d, want <= 16", n)
	}
	if ev := c.Stats().Evictions; ev < 200-16 {
		t.Errorf("evictions = %d, want >= %d", ev, 200-16)
	}
}

func TestLRUOrderWithinShard(t *testing.T) {
	// Craft keys that land in the same shard so the per-shard LRU
	// order is observable: with capacity 16 each shard holds 1 entry,
	// so use a larger cache and same-shard keys.
	c := New(numShards * 2) // 2 entries per shard
	var same []string
	want := shardOf("seed")
	for i := 0; len(same) < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		if shardOf(k) == want {
			same = append(same, k)
		}
	}
	c.Put(same[0], []byte("0"))
	c.Put(same[1], []byte("1"))
	// Touch same[0] so same[1] becomes LRU, then insert a third.
	if _, ok := c.Get(same[0]); !ok {
		t.Fatal("expected hit")
	}
	c.Put(same[2], []byte("2"))
	if _, ok := c.Get(same[1]); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := c.Get(same[0]); !ok {
		t.Error("recently used entry was evicted")
	}
	if _, ok := c.Get(same[2]); !ok {
		t.Error("new entry missing")
	}
}

func TestPurge(t *testing.T) {
	c := New(64)
	for i := 0; i < 20; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	c.Purge()
	if n := c.Len(); n != 0 {
		t.Errorf("Len after purge = %d", n)
	}
	if _, ok := c.Get("k3"); ok {
		t.Error("hit after purge")
	}
	if p := c.Stats().Purges; p != 1 {
		t.Errorf("purges = %d", p)
	}
	// Cache still works after a purge.
	c.Put("x", []byte("y"))
	if _, ok := c.Get("x"); !ok {
		t.Error("cache dead after purge")
	}
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	if c := New(0); c != nil {
		t.Fatal("New(0) should return the nil disabled cache")
	}
	c.Put("a", []byte("v"))
	if _, ok := c.Get("a"); ok {
		t.Error("nil cache returned a hit")
	}
	c.Purge()
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil stats = %+v", st)
	}
	if c.HitRatio() != 0 || c.Len() != 0 {
		t.Error("nil cache ratio/len not zero")
	}
}

// TestKeyBuilderUnambiguous verifies the self-delimiting property:
// distinct field sequences whose naive concatenations collide must
// produce distinct keys.
func TestKeyBuilderUnambiguous(t *testing.T) {
	key := func(fields ...string) string {
		var k KeyBuilder
		for _, f := range fields {
			k.Str(f)
		}
		return k.String()
	}
	if key("ab", "c") == key("a", "bc") {
		t.Error(`("ab","c") collides with ("a","bc")`)
	}
	if key("ab") == key("a", "b") {
		t.Error(`("ab") collides with ("a","b")`)
	}
	var a, b KeyBuilder
	a.Byte(1).U32(0x01020304).Str("q")
	b.Byte(1).U32(0x01020304).Str("q")
	if a.String() != b.String() {
		t.Error("identical field sequences differ")
	}
	var d, e KeyBuilder
	d.U32(1).U32(2)
	e.U64(1<<32 | 2)
	if d.String() == e.String() {
		// Two uint32s and one uint64 have the same width; the caller
		// separates namespaces with a leading tag byte, but the raw
		// integer encodings genuinely can collide — document it.
		t.Log("U32+U32 == U64 at matching bit patterns (expected; callers tag namespaces)")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := fmt.Sprintf("k%d", i%200)
				if v, ok := c.Get(k); ok && len(v) == 0 {
					t.Error("empty cached value")
					return
				}
				c.Put(k, []byte{byte(i)})
				if i%500 == 0 {
					c.Purge()
				}
				_ = c.Stats()
				_ = c.HitRatio()
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 128 {
		t.Errorf("Len = %d beyond capacity", c.Len())
	}
}
