// Package qcache is the serving layer's query-result cache: a sharded
// LRU keyed on an exact encoding of the query and holding the exact
// response bytes, so a cache hit is bit-identical to recomputing.
//
// The cache is sharded to keep lock hold times short under concurrent
// load: each key hashes to one of 16 shards, each with its own mutex,
// map, and intrusive LRU list. Hit/miss/eviction counters are atomics
// read by the /metrics endpoint without taking any shard lock.
//
// A nil *Cache is valid and means "caching disabled": Get always
// misses, Put and Purge are no-ops. This lets the server thread a
// single pointer through the request path without branching on a
// config flag.
package qcache

import (
	"sync"
	"sync/atomic"
)

const numShards = 16

// Cache is a sharded LRU over immutable byte values.
type Cache struct {
	shards [numShards]shard

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	purges    atomic.Int64
}

type shard struct {
	mu  sync.Mutex
	cap int
	m   map[string]*entry
	// Intrusive doubly-linked LRU list with a sentinel head: head.next
	// is most recent, head.prev is least recent.
	head entry
}

type entry struct {
	key        string
	val        []byte
	prev, next *entry
}

// New returns a cache holding at most capacity entries in total.
// capacity <= 0 returns nil — the disabled cache.
func New(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	perShard := (capacity + numShards - 1) / numShards
	c := &Cache{}
	for i := range c.shards {
		s := &c.shards[i]
		s.cap = perShard
		s.m = make(map[string]*entry, perShard)
		s.head.next = &s.head
		s.head.prev = &s.head
	}
	return c
}

// Get returns the cached value for key and whether it was present,
// promoting the entry to most-recently-used. The returned slice is
// shared and must not be mutated.
func (c *Cache) Get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	s := &c.shards[shardOf(key)]
	s.mu.Lock()
	e, ok := s.m[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	s.unlink(e)
	s.pushFront(e)
	val := e.val
	s.mu.Unlock()
	c.hits.Add(1)
	return val, true
}

// Put stores val under key, evicting the least-recently-used entry of
// the shard if it is full. The cache takes ownership of val; callers
// must not mutate it afterwards.
func (c *Cache) Put(key string, val []byte) {
	if c == nil {
		return
	}
	s := &c.shards[shardOf(key)]
	s.mu.Lock()
	if e, ok := s.m[key]; ok {
		e.val = val
		s.unlink(e)
		s.pushFront(e)
		s.mu.Unlock()
		return
	}
	var evicted bool
	if len(s.m) >= s.cap {
		lru := s.head.prev
		s.unlink(lru)
		delete(s.m, lru.key)
		evicted = true
	}
	e := &entry{key: key, val: val}
	s.m[key] = e
	s.pushFront(e)
	s.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
	}
}

// Purge drops every entry. The server calls this when the underlying
// snapshot is swapped, so no response computed against the old lake
// can be served against the new one.
func (c *Cache) Purge() {
	if c == nil {
		return
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.m = make(map[string]*entry, s.cap)
		s.head.next = &s.head
		s.head.prev = &s.head
		s.mu.Unlock()
	}
	c.purges.Add(1)
}

// Len returns the current number of entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Stats is a point-in-time view of the cache counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Purges    int64
	Entries   int
}

// Stats returns the current counters. Safe on a nil cache (all zero).
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Purges:    c.purges.Load(),
		Entries:   c.Len(),
	}
}

// HitRatio returns hits/(hits+misses), or 0 before any lookup.
func (c *Cache) HitRatio() float64 {
	if c == nil {
		return 0
	}
	h, m := c.hits.Load(), c.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

func (s *shard) unlink(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (s *shard) pushFront(e *entry) {
	e.prev = &s.head
	e.next = s.head.next
	s.head.next.prev = e
	s.head.next = e
}

// shardOf hashes a key to its shard with FNV-1a.
func shardOf(key string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime
	}
	return h % numShards
}
