package qcache

import (
	"encoding/binary"
	"strings"
)

// KeyBuilder assembles an unambiguous cache key from typed fields.
// Every field is self-delimiting — strings are length-prefixed and
// integers fixed-width — so no two distinct field sequences can render
// to the same key. This matters because query values outside the lake
// dictionary have no stable ID and must be keyed by their literal
// text; naive concatenation would let ("ab","c") collide with
// ("a","bc").
type KeyBuilder struct {
	b strings.Builder
}

// Str appends a length-prefixed string field.
func (k *KeyBuilder) Str(s string) *KeyBuilder {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(s)))
	k.b.Write(n[:])
	k.b.WriteString(s)
	return k
}

// U32 appends a fixed-width uint32 field (e.g. a dictionary value ID
// or a top-k limit).
func (k *KeyBuilder) U32(v uint32) *KeyBuilder {
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], v)
	k.b.Write(n[:])
	return k
}

// U64 appends a fixed-width uint64 field (e.g. a float threshold's
// bit pattern).
func (k *KeyBuilder) U64(v uint64) *KeyBuilder {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], v)
	k.b.Write(n[:])
	return k
}

// Byte appends a one-byte tag, used to separate key namespaces (one
// per endpoint/mode) and to distinguish in-vocabulary IDs from
// out-of-vocabulary literals.
func (k *KeyBuilder) Byte(v byte) *KeyBuilder {
	k.b.WriteByte(v)
	return k
}

// String returns the assembled key.
func (k *KeyBuilder) String() string { return k.b.String() }
