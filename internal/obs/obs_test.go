package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Inc()
	g.Inc()
	g.Dec()
	if g.Value() != 1 {
		t.Errorf("gauge = %d, want 1", g.Value())
	}
	g.Set(42)
	if g.Value() != 42 {
		t.Errorf("gauge after Set = %d, want 42", g.Value())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram should report 0")
	}
	// 1000 observations uniformly spread over 1ms..100ms: the median
	// must land near 50ms and p99 near 100ms, within the bucket
	// geometry's ±30% envelope.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * 100 * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	within := func(got time.Duration, want time.Duration, tol float64) bool {
		return math.Abs(float64(got)-float64(want)) <= tol*float64(want)
	}
	if p50 := h.Quantile(0.5); !within(p50, 50*time.Millisecond, 0.31) {
		t.Errorf("p50 = %v, want ~50ms", p50)
	}
	if p99 := h.Quantile(0.99); !within(p99, 99*time.Millisecond, 0.31) {
		t.Errorf("p99 = %v, want ~99ms", p99)
	}
	if p50, p99 := h.Quantile(0.5), h.Quantile(0.99); p50 >= p99 {
		t.Errorf("quantiles not monotone: p50 %v >= p99 %v", p50, p99)
	}
}

func TestHistogramSeparatesFastAndSlow(t *testing.T) {
	// A bimodal workload — many cache hits at ~20µs, few misses at
	// ~20ms — must keep p50 at the fast mode and p99 at the slow one.
	var h Histogram
	for i := 0; i < 950; i++ {
		h.Observe(20 * time.Microsecond)
	}
	for i := 0; i < 50; i++ {
		h.Observe(20 * time.Millisecond)
	}
	if p50 := h.Quantile(0.5); p50 > 100*time.Microsecond {
		t.Errorf("p50 = %v, want fast mode (<100µs)", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 5*time.Millisecond {
		t.Errorf("p99 = %v, want slow mode (>5ms)", p99)
	}
}

func TestHistogramOverflowAndUnderflow(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)    // clamps to 0
	h.Observe(time.Nanosecond) // below the first bucket
	h.Observe(24 * time.Hour)  // beyond the last bucket
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if q := h.Quantile(1); q <= 0 {
		t.Errorf("max quantile = %v, want positive", q)
	}
}

func TestRegistryPrometheusText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("lakeserved_requests_total", "Total requests.", `endpoint="join"`)
	c2 := r.Counter("lakeserved_requests_total", "Total requests.", `endpoint="union"`)
	g := r.Gauge("lakeserved_inflight", "In-flight queries.", "")
	h := r.Histogram("lakeserved_request_seconds", "Request latency.", `endpoint="join"`)
	r.GaugeFunc("lakeserved_cache_hit_ratio", "Cache hit ratio.", "", func() float64 { return 0.75 })

	c.Add(3)
	c2.Inc()
	g.Set(2)
	h.Observe(10 * time.Millisecond)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lakeserved_requests_total counter",
		`lakeserved_requests_total{endpoint="join"} 3`,
		`lakeserved_requests_total{endpoint="union"} 1`,
		"# TYPE lakeserved_inflight gauge",
		"lakeserved_inflight 2",
		"# TYPE lakeserved_request_seconds summary",
		`lakeserved_request_seconds{endpoint="join",quantile="0.5"}`,
		`lakeserved_request_seconds{endpoint="join",quantile="0.99"}`,
		`lakeserved_request_seconds_count{endpoint="join"} 1`,
		"lakeserved_cache_hit_ratio 0.75",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in exposition:\n%s", want, out)
		}
	}
	// One TYPE line per family even with several series.
	if n := strings.Count(out, "# TYPE lakeserved_requests_total"); n != 1 {
		t.Errorf("family header repeated %d times", n)
	}

	snap := r.Snapshot()
	if snap[`lakeserved_requests_total{endpoint="join"}`] != 3 {
		t.Errorf("snapshot miss: %v", snap)
	}
}

// TestConcurrentObserve hammers every primitive from many goroutines;
// run under -race this is the lock-cheap write-path contract.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "c", "")
	g := r.Gauge("g", "g", "")
	h := r.Histogram("h_seconds", "h", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Inc()
				g.Dec()
				h.Observe(time.Duration(j) * time.Microsecond)
				if j%100 == 0 {
					_ = h.Quantile(0.5)
					var b strings.Builder
					_ = r.WriteText(&b)
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}
