// Package obs provides the lock-cheap observability primitives behind
// the serving layer's /metrics endpoint: monotonic counters, gauges,
// and streaming latency histograms with quantile estimation, collected
// in a Registry that renders the Prometheus text exposition format.
//
// Every write path is a single atomic add — no locks, no allocation —
// so instrumenting a hot query path costs nanoseconds and is safe for
// unbounded concurrent use. Reads (quantiles, the /metrics render) are
// lock-free snapshots: they may tear across concurrent writes, which
// for monitoring is the standard and acceptable trade.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down (in-flight requests, queue
// depth).
type Gauge struct {
	v atomic.Int64
}

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set stores an absolute value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram bucket geometry: bucket i covers durations in
// [base*ratio^i, base*ratio^(i+1)), from 1µs up to ~17 minutes. The
// 1.3 ratio bounds the quantile estimation error at ±15% — plenty for
// latency monitoring — while keeping the whole histogram at 81 atomic
// words.
const (
	histBuckets = 80
	histBase    = float64(time.Microsecond)
	histRatio   = 1.3
)

// bucketBounds[i] is the inclusive upper bound of bucket i, in
// nanoseconds. Computed once at init.
var bucketBounds = func() [histBuckets]float64 {
	var b [histBuckets]float64
	v := histBase
	for i := range b {
		v *= histRatio
		b[i] = v
	}
	return b
}()

// Histogram is a streaming latency histogram over log-spaced buckets.
// Observe is one atomic add; Quantile reads a lock-free snapshot.
type Histogram struct {
	counts [histBuckets]atomic.Int64 // last bucket also absorbs overflow
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	if float64(d) <= histBase {
		return 0
	}
	i := int(math.Log(float64(d)/histBase) / math.Log(histRatio))
	if i >= histBuckets {
		return histBuckets - 1
	}
	if i < 0 {
		return 0
	}
	return i
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile estimates the q-th quantile (q in [0, 1]) of the observed
// durations by linear interpolation inside the bucket where the
// cumulative count crosses q. Returns 0 when nothing was observed.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for i := 0; i < histBuckets; i++ {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= target {
			lo := histBase
			if i > 0 {
				lo = bucketBounds[i-1]
			}
			hi := bucketBounds[i]
			frac := 0.0
			if n > 0 {
				frac = (target - cum) / n
			}
			return time.Duration(lo + (hi-lo)*frac)
		}
		cum += n
	}
	return time.Duration(bucketBounds[histBuckets-1])
}

// Registry collects named metrics and renders them in the Prometheus
// text exposition format. Metric handles (Counter, Gauge, Histogram)
// are registered once — typically at server construction — and written
// to concurrently; WriteText may run at any time.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

type family struct {
	name, help, typ string
	series          []series
}

type series struct {
	labels string // rendered label set without braces, "" for none
	c      *Counter
	g      *Gauge
	h      *Histogram
	f      func() float64
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) add(name, help, typ, labels string, s series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, typ: typ}
		r.families[name] = fam
		r.order = append(r.order, name)
	}
	s.labels = labels
	fam.series = append(fam.series, s)
}

// Counter registers and returns a counter. labels is a rendered
// Prometheus label set without braces (e.g. `endpoint="join"`), or ""
// for an unlabeled series.
func (r *Registry) Counter(name, help, labels string) *Counter {
	c := &Counter{}
	r.add(name, help, "counter", labels, series{c: c})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help, labels string) *Gauge {
	g := &Gauge{}
	r.add(name, help, "gauge", labels, series{g: g})
	return g
}

// GaugeFunc registers a derived gauge evaluated at render time (e.g. a
// cache hit ratio).
func (r *Registry) GaugeFunc(name, help, labels string, fn func() float64) {
	r.add(name, help, "gauge", labels, series{f: fn})
}

// Histogram registers and returns a latency histogram, rendered as a
// Prometheus summary with p50/p95/p99 quantiles plus _sum and _count.
func (r *Registry) Histogram(name, help, labels string) *Histogram {
	h := &Histogram{}
	r.add(name, help, "summary", labels, series{h: h})
	return h
}

// summaryQuantiles are the quantiles every histogram exposes.
var summaryQuantiles = []struct {
	q     float64
	label string
}{
	{0.5, "0.5"},
	{0.95, "0.95"},
	{0.99, "0.99"},
}

// WriteText renders every registered metric in the Prometheus text
// exposition format, families in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.order))
	for i, name := range r.order {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()
	var b strings.Builder
	for _, fam := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", fam.name, fam.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam.name, fam.typ)
		for _, s := range fam.series {
			switch {
			case s.c != nil:
				fmt.Fprintf(&b, "%s%s %d\n", fam.name, braces(s.labels), s.c.Value())
			case s.g != nil:
				fmt.Fprintf(&b, "%s%s %d\n", fam.name, braces(s.labels), s.g.Value())
			case s.f != nil:
				fmt.Fprintf(&b, "%s%s %s\n", fam.name, braces(s.labels), formatFloat(s.f()))
			case s.h != nil:
				for _, sq := range summaryQuantiles {
					fmt.Fprintf(&b, "%s%s %s\n", fam.name,
						braces(joinLabels(s.labels, `quantile="`+sq.label+`"`)),
						formatFloat(s.h.Quantile(sq.q).Seconds()))
				}
				fmt.Fprintf(&b, "%s_sum%s %s\n", fam.name, braces(s.labels), formatFloat(s.h.Sum().Seconds()))
				fmt.Fprintf(&b, "%s_count%s %d\n", fam.name, braces(s.labels), s.h.Count())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Snapshot returns (name without labels -> rendered series lines) for
// tests and the /stats endpoint; keys are "name{labels}" strings.
func (r *Registry) Snapshot() map[string]float64 {
	var b strings.Builder
	_ = r.WriteText(&b)
	out := make(map[string]float64)
	for _, line := range strings.Split(b.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[i+1:], "%g", &v); err == nil {
			out[line[:i]] = v
		}
	}
	return out
}

// Names returns the registered family names in registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.order...)
	sort.Strings(out)
	return out
}

func braces(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func joinLabels(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	}
	return a + "," + b
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation, no exponent for common magnitudes.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
