package router

import (
	"bytes"
	"encoding/json"
	"net/http"
	"reflect"
	"testing"

	"tablehound/internal/core"
	"tablehound/internal/discover"
	"tablehound/internal/server"
	"tablehound/internal/snap"
	"tablehound/internal/table"
)

// A router over a single unsharded server must answer /v1/discover
// byte-identically, success and error alike — including the
// degenerate-case parity with /v1/join and /v1/union, which therefore
// holds through the router too.
func TestDiscoverSingleShardByteParity(t *testing.T) {
	gen, sys, _, _ := fixture(t)
	_, direct, addrs := startShards(t, []*core.System{sys}, nil)
	_, routed := startRouter(t, Config{Addrs: addrs})

	qt := gen.Tables[0]
	vals := qt.Columns[0].Values
	cases := []struct {
		name string
		req  server.DiscoverRequest
	}{
		{"join values", server.DiscoverRequest{Values: vals, Relation: "join", K: 5}},
		{"join containment", server.DiscoverRequest{Values: vals, Relation: "join", K: 5, Mode: "containment", Threshold: 0.3}},
		{"union by id", server.DiscoverRequest{TableID: qt.ID, Relation: "union", K: 5}},
		{"any by id", server.DiscoverRequest{TableID: qt.ID, K: 5}},
		{"predicated", server.DiscoverRequest{TableID: qt.ID, Relation: "union", K: 5,
			Predicates: discover.Predicates{MinRows: 1, ColumnNames: []string{qt.Columns[0].Name}}}},
		{"bad k", server.DiscoverRequest{TableID: qt.ID}},
		{"bad relation", server.DiscoverRequest{TableID: qt.ID, K: 5, Relation: "psychic"}},
		{"unknown table", server.DiscoverRequest{TableID: "no-such-table", K: 5}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dResp, dBody := post(t, direct[0].URL+"/v1/discover", c.req)
			rResp, rBody := post(t, routed.URL+"/v1/discover", c.req)
			if dResp.StatusCode != rResp.StatusCode {
				t.Fatalf("status: direct %d, routed %d (%s vs %s)", dResp.StatusCode, rResp.StatusCode, dBody, rBody)
			}
			if !bytes.Equal(dBody, rBody) {
				t.Errorf("body mismatch:\ndirect %s\nrouted %s", dBody, rBody)
			}
		})
	}

	// Explain blocks carry wall-clock elapsed_us, so byte equality
	// cannot hold across executions; compare with timings zeroed.
	t.Run("explain", func(t *testing.T) {
		req := server.DiscoverRequest{TableID: qt.ID, Relation: "union", K: 5, Explain: true}
		_, dBody := post(t, direct[0].URL+"/v1/discover", req)
		_, rBody := post(t, routed.URL+"/v1/discover", req)
		var d, r discoverRouterResponse
		if err := json.Unmarshal(dBody, &d); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(rBody, &r); err != nil {
			t.Fatal(err)
		}
		for i := range d.Explain {
			d.Explain[i].ElapsedUS = 0
		}
		for i := range r.Explain {
			r.Explain[i].ElapsedUS = 0
		}
		if !reflect.DeepEqual(d, r) {
			t.Errorf("explain responses diverge beyond timing:\ndirect %s\nrouted %s", dBody, rBody)
		}
	})

	// Routed discover with a single relation and no predicates equals
	// the routed bare endpoint, byte for byte.
	t.Run("parity with bare endpoints", func(t *testing.T) {
		_, jBody := post(t, routed.URL+"/v1/join", server.JoinRequest{Values: vals, K: 5})
		_, dBody := post(t, routed.URL+"/v1/discover", server.DiscoverRequest{Values: vals, Relation: "join", K: 5})
		if !bytes.Equal(jBody, dBody) {
			t.Errorf("routed discover != routed /v1/join:\n%s\n%s", jBody, dBody)
		}
		_, uBody := post(t, routed.URL+"/v1/union", server.UnionRequest{TableID: qt.ID, K: 5})
		_, dBody = post(t, routed.URL+"/v1/discover", server.DiscoverRequest{TableID: qt.ID, Relation: "union", K: 5})
		if !bytes.Equal(uBody, dBody) {
			t.Errorf("routed discover != routed /v1/union:\n%s\n%s", uBody, dBody)
		}
	})
}

// A 2-shard router must reproduce the unsharded discover ranking for
// the join relation (overlap scores are query-local) and relocate
// table_id seeds to their owner shard for union/any.
func TestDiscoverTwoShardFanout(t *testing.T) {
	gen, sys, two, man := fixture(t)
	_, direct, _ := startShards(t, []*core.System{sys}, nil)
	_, _, addrs := startShards(t, two, man)
	_, routed := startRouter(t, Config{Addrs: addrs})

	t.Run("join parity", func(t *testing.T) {
		req := server.DiscoverRequest{Values: gen.Tables[0].Columns[0].Values, Relation: "join", K: 10}
		dResp, dBody := post(t, direct[0].URL+"/v1/discover", req)
		rResp, rBody := post(t, routed.URL+"/v1/discover", req)
		if dResp.StatusCode != 200 || rResp.StatusCode != 200 {
			t.Fatalf("status direct %d routed %d", dResp.StatusCode, rResp.StatusCode)
		}
		if !bytes.Equal(dBody, rBody) {
			t.Errorf("2-shard discover join != unsharded\ndirect %s\nrouted %s", dBody, rBody)
		}
	})

	t.Run("union by table_id", func(t *testing.T) {
		qt := gen.Tables[0]
		resp, body := post(t, routed.URL+"/v1/discover",
			server.DiscoverRequest{TableID: qt.ID, Relation: "union", K: 10})
		if resp.StatusCode != 200 {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var out discoverRouterResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.ShardsOK != "" {
			t.Errorf("complete response carries shards_ok %q", out.ShardsOK)
		}
		if out.Results == nil || len(*out.Results) == 0 {
			t.Fatalf("no results: %s", body)
		}
		seen := map[int]bool{}
		for _, r := range *out.Results {
			if r.TableID == qt.ID {
				t.Errorf("seed table %s in its own results", qt.ID)
			}
			seen[snap.ShardOf(r.TableID, 2)] = true
		}
		if len(seen) != 2 {
			t.Errorf("results only from shards %v, want both", seen)
		}
	})

	t.Run("explain merge", func(t *testing.T) {
		req := server.DiscoverRequest{Values: gen.Tables[0].Columns[0].Values, Relation: "join", K: 10,
			Predicates: discover.Predicates{MinRows: 1}, Explain: true}
		resp, body := post(t, routed.URL+"/v1/discover", req)
		if resp.StatusCode != 200 {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var out discoverRouterResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		stages := make([]string, len(out.Explain))
		for i, st := range out.Explain {
			stages[i] = st.Stage
		}
		want := []string{discover.StageMeta, discover.StageCandidates, discover.StageVerify}
		if !reflect.DeepEqual(stages, want) {
			t.Fatalf("merged explain stages = %v, want %v", stages, want)
		}
		// The meta prefilter sums across both shards to the whole lake.
		if out.Explain[0].In != len(gen.Tables) {
			t.Errorf("merged meta in = %d, want lake size %d", out.Explain[0].In, len(gen.Tables))
		}
	})

	t.Run("deterministic 4xx propagates", func(t *testing.T) {
		resp, body := post(t, routed.URL+"/v1/discover",
			server.DiscoverRequest{TableID: "no-such-table", K: 5})
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		if want := `{"error":"table \"no-such-table\": not found"}`; string(body) != want {
			t.Errorf("404 body %s, want %s", body, want)
		}
	})
}

// Shard failures degrade discover like every other endpoint: 200 with
// shards_ok M/N, never a 5xx.
func TestDiscoverDegradation(t *testing.T) {
	gen, _, two, man := fixture(t)
	_, https, addrs := startShards(t, two, man)
	_, routed := startRouter(t, Config{Addrs: addrs})

	// Kill shard 1: values-seeded discover stays 200 and reports 1/2.
	https[1].Close()
	resp, body := post(t, routed.URL+"/v1/discover",
		server.DiscoverRequest{Values: gen.Tables[0].Columns[0].Values, Relation: "join", K: 5})
	if resp.StatusCode != 200 {
		t.Fatalf("shard down: status %d: %s", resp.StatusCode, body)
	}
	var out discoverRouterResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.ShardsOK != "1/2" {
		t.Errorf("shards_ok = %q, want 1/2 (%s)", out.ShardsOK, body)
	}

	// A table_id seed whose owner is the dead shard degrades to an
	// empty 200 with the relation's result field present.
	var deadOwned *table.Table
	for _, tbl := range gen.Tables {
		if snap.ShardOf(tbl.ID, 2) == 1 {
			deadOwned = tbl
			break
		}
	}
	resp, body = post(t, routed.URL+"/v1/discover",
		server.DiscoverRequest{TableID: deadOwned.ID, Relation: "union", K: 5})
	if resp.StatusCode != 200 {
		t.Fatalf("owner down: status %d: %s", resp.StatusCode, body)
	}
	out = discoverRouterResponse{}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.ShardsOK != "0/2" || out.Results == nil || len(*out.Results) != 0 {
		t.Errorf("owner-down discover = %s, want empty results and shards_ok 0/2", body)
	}

	// Kill shard 0 too: still 200, 0/2.
	https[0].Close()
	resp, body = post(t, routed.URL+"/v1/discover",
		server.DiscoverRequest{Values: gen.Tables[0].Columns[0].Values, Relation: "join", K: 5})
	if resp.StatusCode != 200 {
		t.Fatalf("all down: status %d: %s", resp.StatusCode, body)
	}
	out = discoverRouterResponse{}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.ShardsOK != "0/2" || out.Matches == nil || len(*out.Matches) != 0 {
		t.Errorf("all-down discover = %s, want empty matches and shards_ok 0/2", body)
	}
}

// The router rejects bad discover queries itself, without touching a
// shard — the same 400 contract as the shard servers.
func TestDiscoverRouterBadQueries(t *testing.T) {
	gen, _, two, man := fixture(t)
	_, _, addrs := startShards(t, two, man)
	_, routed := startRouter(t, Config{Addrs: addrs})
	qt := gen.Tables[0]

	cases := []struct {
		name string
		req  server.DiscoverRequest
	}{
		{"absent k", server.DiscoverRequest{TableID: qt.ID}},
		{"negative k", server.DiscoverRequest{TableID: qt.ID, K: -2}},
		{"bad relation", server.DiscoverRequest{TableID: qt.ID, K: 5, Relation: "psychic"}},
		{"bad mode", server.DiscoverRequest{TableID: qt.ID, K: 5, Mode: "fuzzy"}},
		{"bad method", server.DiscoverRequest{TableID: qt.ID, K: 5, Method: "magic"}},
		{"no seed", server.DiscoverRequest{K: 5}},
		{"two seeds", server.DiscoverRequest{TableID: qt.ID, Values: []string{"x"}, K: 5}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := post(t, routed.URL+"/v1/discover", c.req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d (%s), want 400", resp.StatusCode, body)
			}
		})
	}
}

func TestMergeExplains(t *testing.T) {
	a := []discover.StageExplain{
		{Stage: discover.StageMeta, In: 10, Out: 4, EstOut: 5, Cost: 30, ElapsedUS: 100},
		{Stage: discover.StageCandidates, In: 4, Out: 9, ElapsedUS: 50},
		{Stage: discover.StageVerify, In: 9, Out: 3, Cost: 9, ElapsedUS: 200},
	}
	b := []discover.StageExplain{
		{Stage: discover.StageMeta, In: 10, Out: 6, EstOut: 7, Cost: 30, ElapsedUS: 80},
		{Stage: discover.StageCandidates, In: 6, Out: 11, ElapsedUS: 60},
		{Stage: discover.StageVerify, In: 11, Out: 5, Cost: 11, ElapsedUS: 150},
	}
	got := mergeExplains([][]discover.StageExplain{a, b})
	want := []discover.StageExplain{
		{Stage: discover.StageMeta, In: 20, Out: 10, EstOut: 12, Cost: 60, ElapsedUS: 180},
		{Stage: discover.StageCandidates, In: 10, Out: 20, ElapsedUS: 110},
		{Stage: discover.StageVerify, In: 20, Out: 8, Cost: 20, ElapsedUS: 350},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("mergeExplains = %+v, want %+v", got, want)
	}
	// One shard passes through unchanged.
	if got := mergeExplains([][]discover.StageExplain{a}); !reflect.DeepEqual(got, a) {
		t.Errorf("single-list merge changed the block: %+v", got)
	}
	// Skipped survives the merge only when every shard skipped — one
	// shard's stats may prove a predicate total while another's cannot.
	skipA := []discover.StageExplain{{Stage: discover.StageMeta, In: 10, Out: 10, Skipped: true}}
	skipB := []discover.StageExplain{{Stage: discover.StageMeta, In: 10, Out: 8, Cost: 10}}
	if got := mergeExplains([][]discover.StageExplain{skipA, skipB}); got[0].Skipped {
		t.Errorf("half-skipped stage still reads skipped: %+v", got)
	}
	if got := mergeExplains([][]discover.StageExplain{skipA, skipA}); !got[0].Skipped {
		t.Errorf("all-skipped stage lost the skipped flag: %+v", got)
	}
}
