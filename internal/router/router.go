// Package router is the scatter-gather tier over a partitioned lake:
// it fans each query across every shard server concurrently, merges
// the per-shard top-k lists in the engines' exact (score, key) order,
// and degrades gracefully when shards are slow or down — partial
// results come back with HTTP 200 and a "shards_ok": "M/N" field,
// never a 5xx.
//
// Layering per request, outermost first:
//
//	panic recovery → a handler panic becomes HTTP 500, never a dead
//	                 process
//	metrics        → per-endpoint request/error/partial counters and
//	                 latency quantiles, per-shard latency histograms
//	                 and up gauges (internal/obs)
//	cache          → exact-key response cache (internal/qcache), keyed
//	                 on the endpoint, the request bytes, and the
//	                 fingerprint of every shard's snapshot generation;
//	                 only complete (all-shards-ok) responses are ever
//	                 cached, so a degraded answer cannot outlive the
//	                 outage that produced it
//	fan-out        → one concurrent sub-request per shard under a
//	                 per-shard timeout; failures (refused, timed out,
//	                 5xx, shed) only shrink shards_ok
//	merge          → concatenate + re-sort with the engine comparator,
//	                 truncate to k (merge.go)
//
// A background health loop polls every shard's /healthz: it feeds the
// shard_up gauges, tracks snapshot generations (a change purges the
// cache), and quarantines shards whose manifest hash differs from
// shard 0's — queries are never fanned to a shard built from a
// different partitioning, because its results would be wrong, not
// merely stale.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"tablehound/internal/obs"
	"tablehound/internal/qcache"
	"tablehound/internal/server"
)

// maxBodyBytes mirrors the shard servers' request/response body bound.
const maxBodyBytes = 8 << 20

// Config tunes the router. Addrs is required; everything else has
// defaults.
type Config struct {
	// Addrs lists the shard servers; index i must serve shard i of the
	// manifest the lake was built with.
	Addrs []string
	// ShardTimeout bounds each per-shard sub-request. A shard that
	// misses it contributes nothing to the merged answer and is counted
	// out of shards_ok. Default: 10s.
	ShardTimeout time.Duration
	// HealthInterval is the /healthz polling period. Default: 2s.
	HealthInterval time.Duration
	// CacheEntries sizes the complete-response cache; 0 disables it.
	CacheEntries int
	// Transport, when non-nil, overrides the HTTP transport used for
	// shard requests (tests inject httptest transports).
	Transport http.RoundTripper
}

func (c *Config) applyDefaults() {
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 10 * time.Second
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
}

// shardState is the health loop's last observation of one shard,
// stored atomically so the serving path reads it without locks.
type shardState struct {
	up           bool
	quarantined  bool   // manifest mismatch: excluded from fan-out
	generation   uint64 // snapshot generation from /healthz
	tables       int
	manifestHash string
}

type shard struct {
	addr   string
	base   string // http://addr
	client *server.Client
	state  atomic.Pointer[shardState]

	upGauge *obs.Gauge
	latency *obs.Histogram
	fails   *obs.Counter
}

// Router fans queries across shard servers and merges the results.
type Router struct {
	cfg    Config
	shards []*shard
	http   *http.Client
	cache  *qcache.Cache
	mux    *http.ServeMux
	start  time.Time

	healthOnce sync.Once
	healthStop chan struct{}
	healthDone chan struct{}

	// genHash fingerprints the per-shard generation vector; cache keys
	// embed it so answers computed against one set of snapshots are
	// unreachable after any shard reloads.
	genHash atomic.Uint64

	reg        *obs.Registry
	endpoints  map[string]*endpointMetrics
	partials   *obs.Counter
	allDown    *obs.Counter
	mismatches *obs.Counter
	panics     *obs.Counter
}

type endpointMetrics struct {
	requests *obs.Counter
	errors   *obs.Counter
	partial  *obs.Counter
	latency  *obs.Histogram
}

// New builds a Router over the given shard addresses. The health loop
// is not started; call Start (or poke CheckShards once) after
// construction.
func New(cfg Config) (*Router, error) {
	cfg.applyDefaults()
	if len(cfg.Addrs) == 0 {
		return nil, fmt.Errorf("router: no shard addresses")
	}
	rt := &Router{
		cfg:        cfg,
		http:       &http.Client{Transport: cfg.Transport},
		cache:      qcache.New(cfg.CacheEntries),
		reg:        obs.NewRegistry(),
		start:      time.Now(),
		healthStop: make(chan struct{}),
		healthDone: make(chan struct{}),
	}
	rt.endpoints = make(map[string]*endpointMetrics)
	for _, name := range []string{"join", "union", "keyword", "discover"} {
		lbl := fmt.Sprintf("endpoint=%q", name)
		rt.endpoints[name] = &endpointMetrics{
			requests: rt.reg.Counter("lakerouter_requests_total", "Requests handled, by endpoint.", lbl),
			errors:   rt.reg.Counter("lakerouter_errors_total", "Requests answered with a non-2xx status, by endpoint.", lbl),
			partial:  rt.reg.Counter("lakerouter_partial_total", "Requests answered 200 with fewer than all shards, by endpoint.", lbl),
			latency:  rt.reg.Histogram("lakerouter_request_seconds", "End-to-end request latency, by endpoint.", lbl),
		}
	}
	rt.partials = rt.reg.Counter("lakerouter_partial_responses_total", "Responses merged from fewer than all shards.", "")
	rt.allDown = rt.reg.Counter("lakerouter_all_shards_down_total", "Requests answered with zero reachable shards.", "")
	rt.mismatches = rt.reg.Counter("lakerouter_manifest_mismatch_total", "Health checks that quarantined a shard over a manifest mismatch.", "")
	rt.panics = rt.reg.Counter("lakerouter_panics_total", "Handler panics recovered into HTTP 500.", "")
	rt.reg.GaugeFunc("lakerouter_cache_hit_ratio", "Complete-response cache hit ratio since start.", "", rt.cache.HitRatio)
	rt.reg.GaugeFunc("lakerouter_uptime_seconds", "Seconds since the router started.", "", func() float64 {
		return time.Since(rt.start).Seconds()
	})

	rt.shards = make([]*shard, len(cfg.Addrs))
	for i, addr := range cfg.Addrs {
		base := addr
		if !hasScheme(base) {
			base = "http://" + base
		}
		lbl := fmt.Sprintf("shard=%q", fmt.Sprint(i))
		sh := &shard{
			addr:    addr,
			base:    base,
			client:  server.NewClientHTTP(addr, rt.http),
			upGauge: rt.reg.Gauge("lakerouter_shard_up", "Shard reachability: 1 when the last health check succeeded.", lbl),
			latency: rt.reg.Histogram("lakerouter_shard_seconds", "Per-shard sub-request latency.", lbl),
			fails:   rt.reg.Counter("lakerouter_shard_failures_total", "Per-shard sub-request failures (refused, timeout, 5xx, shed).", lbl),
		}
		sh.state.Store(&shardState{})
		rt.shards[i] = sh
	}

	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("/v1/join", rt.queryEndpoint("join", rt.handleJoin))
	rt.mux.HandleFunc("/v1/union", rt.queryEndpoint("union", rt.handleUnion))
	rt.mux.HandleFunc("/v1/keyword", rt.queryEndpoint("keyword", rt.handleKeyword))
	rt.mux.HandleFunc("/v1/discover", rt.queryEndpoint("discover", rt.handleDiscover))
	rt.mux.HandleFunc("/v1/admin/reload", rt.handleReload)
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/stats", rt.handleStats)
	rt.mux.HandleFunc("/metrics", rt.handleMetrics)
	return rt, nil
}

func hasScheme(addr string) bool {
	for i := 0; i < len(addr); i++ {
		if addr[i] == ':' {
			return i+2 < len(addr) && addr[i+1] == '/' && addr[i+2] == '/'
		}
	}
	return false
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				rt.panics.Inc()
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", v))
			}
		}()
		rt.mux.ServeHTTP(w, r)
	})
}

// Metrics exposes the registry for embedding and tests.
func (rt *Router) Metrics() *obs.Registry { return rt.reg }

// Start launches the background health loop. Stop terminates it.
func (rt *Router) Start() {
	rt.healthOnce.Do(func() {
		go func() {
			defer close(rt.healthDone)
			t := time.NewTicker(rt.cfg.HealthInterval)
			defer t.Stop()
			for {
				select {
				case <-rt.healthStop:
					return
				case <-t.C:
					rt.CheckShards(context.Background())
				}
			}
		}()
	})
}

// Stop terminates the health loop (idempotent; safe before Start).
func (rt *Router) Stop() {
	select {
	case <-rt.healthStop:
	default:
		close(rt.healthStop)
	}
}

// CheckShards polls every shard's /healthz once, concurrently, and
// updates the health state: up gauges, generation tracking (a change
// purges the cache), and manifest policing — any shard whose manifest
// hash differs from the reference (the lowest-indexed reachable shard
// that reports one) is quarantined out of the fan-out set, because a
// shard built from a different partitioning returns wrong results,
// not stale ones. Returns the number of reachable shards.
func (rt *Router) CheckShards(ctx context.Context) int {
	states := make([]*shardState, len(rt.shards))
	var wg sync.WaitGroup
	for i, sh := range rt.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			hctx, cancel := context.WithTimeout(ctx, rt.cfg.ShardTimeout)
			defer cancel()
			h, err := sh.client.Healthz(hctx)
			if err != nil {
				states[i] = &shardState{}
				return
			}
			st := &shardState{up: true, generation: h.Generation, tables: h.Tables}
			if h.Shard != nil {
				st.manifestHash = h.Shard.ManifestHash
				if h.Shard.Count != len(rt.shards) || h.Shard.Index != i {
					// Wrong partitioning arity or a shard serving under the
					// wrong index: its results cannot be merged.
					st.quarantined = true
				}
			}
			states[i] = st
		}(i, sh)
	}
	wg.Wait()

	// Manifest policing: the reference hash is the lowest-indexed
	// reachable shard that reports one.
	ref := ""
	for _, st := range states {
		if st.up && st.manifestHash != "" {
			ref = st.manifestHash
			break
		}
	}
	up := 0
	for i, st := range states {
		if st.up && !st.quarantined && st.manifestHash != ref {
			st.quarantined = true
		}
		if st.quarantined {
			rt.mismatches.Inc()
		}
		rt.shards[i].state.Store(st)
		if st.up && !st.quarantined {
			rt.shards[i].upGauge.Set(1)
			up++
		} else {
			rt.shards[i].upGauge.Set(0)
		}
	}

	// Fingerprint the generation vector; purge the cache when it moves.
	h := uint64(1469598103934665603)
	for _, st := range states {
		h ^= st.generation + 0x9e3779b97f4a7c15
		h *= 1099511628211
	}
	if rt.genHash.Swap(h) != h {
		rt.cache.Purge()
	}
	return up
}

// --- fan-out ---

// shardResult is one shard's answer to a fanned-out sub-request.
type shardResult struct {
	idx    int
	status int
	body   []byte
	err    error
}

// ok reports whether the sub-request produced a mergeable 2xx answer.
func (r shardResult) ok() bool { return r.err == nil && r.status/100 == 2 }

// clientError reports a deterministic 4xx the shard computed from the
// request itself (bad query, unknown table) — every shard would agree,
// so the router propagates it instead of degrading. Overload (429) is
// a shard-local condition and counts as a failure instead.
func (r shardResult) clientError() bool {
	return r.err == nil && r.status/100 == 4 && r.status != http.StatusTooManyRequests
}

// eligible returns the shards queries fan out to: everything not
// quarantined by manifest policing. Shards currently marked down are
// still attempted — a refused connection is cheap, and it makes
// recovery immediate rather than waiting a health interval.
func (rt *Router) eligible() []*shard {
	out := make([]*shard, 0, len(rt.shards))
	for _, sh := range rt.shards {
		if !sh.state.Load().quarantined {
			out = append(out, sh)
		}
	}
	return out
}

// fanout POSTs body to path on every given shard concurrently, each
// under its own ShardTimeout, and returns one result per shard.
func (rt *Router) fanout(ctx context.Context, path string, body []byte, shards []*shard) []shardResult {
	results := make([]shardResult, len(shards))
	var wg sync.WaitGroup
	for i, sh := range shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			t0 := time.Now()
			status, out, err := rt.postShard(ctx, sh, path, body)
			sh.latency.Observe(time.Since(t0))
			results[i] = shardResult{idx: i, status: status, body: out, err: err}
			if !results[i].ok() && !results[i].clientError() {
				sh.fails.Inc()
			}
		}(i, sh)
	}
	wg.Wait()
	return results
}

func (rt *Router) postShard(ctx context.Context, sh *shard, path string, body []byte) (int, []byte, error) {
	sctx, cancel := context.WithTimeout(ctx, rt.cfg.ShardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodPost, sh.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.http.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, out, nil
}

// --- response plumbing (mirrors the shard server's exactly, so a
// 1-shard router is byte-identical on error paths too) ---

func writeJSONBytes(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSONBytes(w, status, body)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	body, _ := json.Marshal(server.ErrorResponse{Error: msg})
	writeJSONBytes(w, status, body)
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) ([]byte, bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST with a JSON body")
		return nil, false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return nil, false
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeError(w, http.StatusBadRequest, "parsing JSON body: "+err.Error())
		return nil, false
	}
	return body, true
}
