// Top-k merge: combining per-shard result lists into exactly the list
// the unsharded engine would have produced.
//
// Every search surface orders results by (score descending, key
// ascending) — join matches by overlap or containment then column key,
// union and keyword results by score then table ID, value clusters by
// best-member score then schema. Tables are partitioned across shards,
// so keys never collide between shard lists and the comparator is a
// total order: concatenating the per-shard top-k lists and re-sorting
// with the engine's own comparator yields the global top-k exactly.
// Per-shard truncation is safe because each shard contributes at most
// its own k best — the global top-k is always a subset of the union of
// the shard top-ks.
package router

import (
	"sort"
	"strings"

	"tablehound/internal/discover"
	"tablehound/internal/server"
)

// mergeJoinMatches merges per-shard join results. byContainment
// selects the containment-mode comparator (containment desc, column
// key asc); otherwise the overlap-mode one (overlap desc, column key
// asc) — the exact orders join.sortMatches and josie.selectTopK
// produce. Returns a non-nil slice (the unsharded handler always
// marshals "matches": []).
func mergeJoinMatches(byContainment bool, lists [][]server.JoinMatch, k int) []server.JoinMatch {
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	out := make([]server.JoinMatch, 0, n)
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.Slice(out, func(i, j int) bool {
		if byContainment {
			if out[i].Containment != out[j].Containment {
				return out[i].Containment > out[j].Containment
			}
		} else {
			if out[i].Overlap != out[j].Overlap {
				return out[i].Overlap > out[j].Overlap
			}
		}
		return out[i].ColumnKey < out[j].ColumnKey
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// mergeScores merges per-shard table rankings by (score desc, table ID
// asc) — the shared comparator of every union method and keyword
// search. Returns a non-nil slice.
func mergeScores(lists [][]server.TableScore, k int) []server.TableScore {
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	out := make([]server.TableScore, 0, n)
	for _, l := range lists {
		out = append(out, l...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].TableID < out[j].TableID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// mergeExplains folds per-shard discover explanation blocks into one:
// stages are keyed by name in the order the first shard reports them
// (every shard runs the same plan, so the orders agree), and the
// candidate counts, cost-model figures, and elapsed time are summed
// across shards — "in", "out", "est_out", and "cost" then read as
// fleet-wide totals. A stage reads skipped only when every shard
// skipped it (one shard's stats may prove a predicate total while
// another's does not). A single shard's block passes through
// unchanged.
func mergeExplains(lists [][]discover.StageExplain) []discover.StageExplain {
	var out []discover.StageExplain
	index := make(map[string]int)
	for _, l := range lists {
		for _, st := range l {
			i, ok := index[st.Stage]
			if !ok {
				index[st.Stage] = len(out)
				out = append(out, st)
				continue
			}
			out[i].In += st.In
			out[i].Out += st.Out
			out[i].EstOut += st.EstOut
			out[i].Cost += st.Cost
			out[i].Skipped = out[i].Skipped && st.Skipped
			out[i].ElapsedUS += st.ElapsedUS
		}
	}
	return out
}

// mergeClusters merges value-search clusters: clusters with the same
// schema are folded together (score = best member, members
// concatenated in shard order), then ordered by (score desc, schema
// asc) exactly as keyword.SearchClusters orders them, and the total
// member count is capped at k — the unsharded call's maxTables budget.
//
// A single shard list passes through bit-identically. Across shards
// the fold is deterministic, but member order inside a straddling
// cluster follows shard order rather than global per-table score
// (cluster responses do not carry per-member scores); DESIGN.md
// documents this as the one surface where the cross-shard merge is
// deterministic-but-not-bitwise against the unsharded engine.
func mergeClusters(lists [][]server.ValueCluster, k int) []server.ValueCluster {
	type slot struct {
		cluster server.ValueCluster
		sig     string
	}
	index := make(map[string]int)
	var slots []slot
	for _, l := range lists {
		for _, c := range l {
			sig := strings.Join(c.Schema, "\x1f")
			if i, ok := index[sig]; ok {
				s := &slots[i]
				if c.Score > s.cluster.Score {
					s.cluster.Score = c.Score
				}
				s.cluster.TableIDs = append(s.cluster.TableIDs, c.TableIDs...)
				continue
			}
			index[sig] = len(slots)
			cp := c
			cp.TableIDs = append([]string(nil), c.TableIDs...)
			slots = append(slots, slot{cluster: cp, sig: sig})
		}
	}
	sort.Slice(slots, func(i, j int) bool {
		if slots[i].cluster.Score != slots[j].cluster.Score {
			return slots[i].cluster.Score > slots[j].cluster.Score
		}
		return strings.Join(slots[i].cluster.Schema, ",") < strings.Join(slots[j].cluster.Schema, ",")
	})
	var out []server.ValueCluster
	budget := k
	for _, s := range slots {
		if budget <= 0 {
			break
		}
		c := s.cluster
		if len(c.TableIDs) > budget {
			c.TableIDs = c.TableIDs[:budget]
		}
		budget -= len(c.TableIDs)
		out = append(out, c)
	}
	return out
}
