package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"tablehound/internal/discover"
	"tablehound/internal/qcache"
	"tablehound/internal/server"
	"tablehound/internal/snap"
)

// --- response types ---
//
// Query responses embed the shard server's response struct, so the
// field layout (and therefore the marshaled bytes) match the unsharded
// server exactly; ShardsOK is appended only when at least one shard
// failed to contribute. A complete answer from a 1-shard router is
// byte-identical to the shard's own answer.

type joinRouterResponse struct {
	server.JoinResponse
	ShardsOK string `json:"shards_ok,omitempty"`
}

type unionRouterResponse struct {
	server.UnionResponse
	ShardsOK string `json:"shards_ok,omitempty"`
}

type keywordRouterResponse struct {
	server.KeywordResponse
	ShardsOK string `json:"shards_ok,omitempty"`
}

type discoverRouterResponse struct {
	server.DiscoverResponse
	ShardsOK string `json:"shards_ok,omitempty"`
}

// ShardStatus is one shard's health as the router last observed it.
type ShardStatus struct {
	Shard        int    `json:"shard"`
	Addr         string `json:"addr"`
	Up           bool   `json:"up"`
	Quarantined  bool   `json:"quarantined,omitempty"`
	Generation   uint64 `json:"generation"`
	Tables       int    `json:"tables"`
	ManifestHash string `json:"manifest_hash,omitempty"`
}

// HealthResponse is the router's /healthz answer.
type HealthResponse struct {
	Status        string        `json:"status"` // ok | degraded | down
	UptimeSeconds float64       `json:"uptime_seconds"`
	ShardsOK      string        `json:"shards_ok"`
	Shards        []ShardStatus `json:"shards"`
}

// StatsResponse is the router's /stats answer.
type StatsResponse struct {
	UptimeSeconds float64                         `json:"uptime_seconds"`
	ShardsOK      string                          `json:"shards_ok"`
	Partials      int64                           `json:"partial_responses"`
	Cache         server.CacheStats               `json:"cache"`
	Endpoints     map[string]server.EndpointStats `json:"endpoints"`
	Shards        []ShardStatus                   `json:"shards"`
}

// ReloadShard is one shard's outcome in a rolling reload.
type ReloadShard struct {
	Shard      int    `json:"shard"`
	OK         bool   `json:"ok"`
	Generation uint64 `json:"generation,omitempty"`
	Tables     int    `json:"tables,omitempty"`
	Error      string `json:"error,omitempty"`
}

// ReloadResponse is the router's /v1/admin/reload answer.
type ReloadResponse struct {
	ShardsOK string        `json:"shards_ok"`
	Shards   []ReloadShard `json:"shards"`
}

// --- endpoint middleware (mirrors the shard server's) ---

func (rt *Router) queryEndpoint(name string, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	m := rt.endpoints[name]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		m.requests.Inc()
		if sw.status >= 400 {
			m.errors.Inc()
		}
		m.latency.Observe(time.Since(start))
	}
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// --- shared fan-out tail ---

// gather runs the scatter-gather tail shared by every query endpoint:
// cache lookup (keyed on the endpoint, the generation vector, and the
// exact request bytes), fan-out of fanBody to every eligible shard,
// ok/failure triage, and the degradation decision. merge turns the ok
// shard bodies into the response value; its ShardsOK field is set by
// the caller-supplied setPartial before marshaling when the answer is
// incomplete. Only complete answers are cached.
func (rt *Router) gather(
	w http.ResponseWriter, r *http.Request,
	endpoint byte, path string, cacheBody, fanBody []byte,
	merge func(bodies [][]byte) (any, error),
	setPartial func(v any, shardsOK string),
	empty func(shardsOK string) any,
) {
	var key string
	if rt.cache != nil {
		var kb qcache.KeyBuilder
		kb.Byte(endpoint).U64(rt.genHash.Load()).Str(string(cacheBody))
		key = kb.String()
		if body, ok := rt.cache.Get(key); ok {
			w.Header().Set("X-Cache", "HIT")
			writeJSONBytes(w, http.StatusOK, body)
			return
		}
		w.Header().Set("X-Cache", "MISS")
	} else {
		w.Header().Set("X-Cache", "BYPASS")
	}

	total := len(rt.shards)
	shards := rt.eligible()
	results := rt.fanout(r.Context(), path, fanBody, shards)

	bodies := make([][]byte, 0, len(results))
	for _, res := range results {
		if res.ok() {
			bodies = append(bodies, res.body)
		}
	}
	if len(bodies) == 0 {
		// No shard produced a mergeable answer. A deterministic client
		// error (every shard computes it from the request alone) is
		// propagated verbatim; operational failure degrades to an empty
		// 200, never a 5xx.
		for _, res := range results {
			if res.clientError() {
				writeJSONBytes(w, res.status, res.body)
				return
			}
		}
		rt.allDown.Inc()
		rt.markPartial(endpoint)
		writeJSON(w, http.StatusOK, empty(fmt.Sprintf("0/%d", total)))
		return
	}

	v, err := merge(bodies)
	if err != nil {
		writeError(w, http.StatusBadGateway, "merging shard responses: "+err.Error())
		return
	}
	complete := len(bodies) == total
	if !complete {
		rt.markPartial(endpoint)
		setPartial(v, fmt.Sprintf("%d/%d", len(bodies), total))
	}
	body, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding response: "+err.Error())
		return
	}
	if complete && key != "" {
		rt.cache.Put(key, body)
	}
	writeJSONBytes(w, http.StatusOK, body)
}

func (rt *Router) markPartial(endpoint byte) {
	rt.partials.Inc()
	switch endpoint {
	case 'J':
		rt.endpoints["join"].partial.Inc()
	case 'U':
		rt.endpoints["union"].partial.Inc()
	case 'K':
		rt.endpoints["keyword"].partial.Inc()
	case 'D':
		rt.endpoints["discover"].partial.Inc()
	}
}

// --- query endpoints ---

func (rt *Router) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req server.JoinRequest
	body, ok := decodeBody(w, r, &req)
	if !ok {
		return
	}
	k, err := server.CheckK(req.K)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if _, err := server.ParseJoinMode(req.Mode); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	byContainment := req.Mode == "containment"
	rt.gather(w, r, 'J', "/v1/join", body, body,
		func(bodies [][]byte) (any, error) {
			lists := make([][]server.JoinMatch, 0, len(bodies))
			for _, b := range bodies {
				var resp server.JoinResponse
				if err := json.Unmarshal(b, &resp); err != nil {
					return nil, err
				}
				lists = append(lists, resp.Matches)
			}
			return &joinRouterResponse{
				JoinResponse: server.JoinResponse{
					Matches: mergeJoinMatches(byContainment, lists, k),
				},
			}, nil
		},
		func(v any, shardsOK string) { v.(*joinRouterResponse).ShardsOK = shardsOK },
		func(shardsOK string) any {
			return &joinRouterResponse{
				JoinResponse: server.JoinResponse{Matches: []server.JoinMatch{}},
				ShardsOK:     shardsOK,
			}
		},
	)
}

func (rt *Router) handleUnion(w http.ResponseWriter, r *http.Request) {
	var req server.UnionRequest
	body, ok := decodeBody(w, r, &req)
	if !ok {
		return
	}
	k, err := server.CheckK(req.K)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if _, err := server.ParseUnionMethod(req.Method); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if (req.TableID == "") == (req.Table == nil) {
		writeError(w, http.StatusBadRequest, "exactly one of table_id or table must be set")
		return
	}

	// A table_id query names a lake table that lives on exactly one
	// shard; the others would answer 404. Fetch it from its owner and
	// fan out the inline form instead — the table keeps its ID, so the
	// owner shard still excludes the query table from its own results.
	fanBody := body
	total := len(rt.shards)
	if req.TableID != "" && total > 1 {
		owner := rt.shards[snap.ShardOf(req.TableID, total)]
		if owner.state.Load().quarantined {
			rt.allDown.Inc()
			rt.markPartial('U')
			writeJSON(w, http.StatusOK, &unionRouterResponse{
				UnionResponse: server.UnionResponse{Results: []server.TableScore{}},
				ShardsOK:      fmt.Sprintf("0/%d", total),
			})
			return
		}
		t, err := owner.client.Table(r.Context(), req.TableID)
		if err != nil {
			if apiErr, isAPI := err.(*server.APIError); isAPI && apiErr.Status/100 == 4 {
				// Deterministic: the owner has the table or nobody does.
				writeError(w, apiErr.Status, apiErr.Message)
				return
			}
			// Owner unreachable: without the query table no shard can
			// answer. Degrade, don't 5xx.
			owner.fails.Inc()
			rt.allDown.Inc()
			rt.markPartial('U')
			writeJSON(w, http.StatusOK, &unionRouterResponse{
				UnionResponse: server.UnionResponse{Results: []server.TableScore{}},
				ShardsOK:      fmt.Sprintf("0/%d", total),
			})
			return
		}
		inline := req
		inline.TableID = ""
		inline.Table = &server.InlineTable{ID: t.ID, Name: t.Name, Columns: t.Columns}
		fanBody, err = json.Marshal(inline)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "encoding shard request: "+err.Error())
			return
		}
	}

	rt.gather(w, r, 'U', "/v1/union", body, fanBody,
		func(bodies [][]byte) (any, error) {
			lists := make([][]server.TableScore, 0, len(bodies))
			for _, b := range bodies {
				var resp server.UnionResponse
				if err := json.Unmarshal(b, &resp); err != nil {
					return nil, err
				}
				lists = append(lists, resp.Results)
			}
			return &unionRouterResponse{
				UnionResponse: server.UnionResponse{Results: mergeScores(lists, k)},
			}, nil
		},
		func(v any, shardsOK string) { v.(*unionRouterResponse).ShardsOK = shardsOK },
		func(shardsOK string) any {
			return &unionRouterResponse{
				UnionResponse: server.UnionResponse{Results: []server.TableScore{}},
				ShardsOK:      shardsOK,
			}
		},
	)
}

func (rt *Router) handleKeyword(w http.ResponseWriter, r *http.Request) {
	var req server.KeywordRequest
	body, ok := decodeBody(w, r, &req)
	if !ok {
		return
	}
	k, err := server.CheckK(req.K)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if _, err := server.ParseKeywordMode(req.Mode); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	mode := req.Mode
	if mode == "" {
		mode = "meta"
	}
	rt.gather(w, r, 'K', "/v1/keyword", body, body,
		func(bodies [][]byte) (any, error) {
			var scores [][]server.TableScore
			var clusters [][]server.ValueCluster
			for _, b := range bodies {
				var resp server.KeywordResponse
				if err := json.Unmarshal(b, &resp); err != nil {
					return nil, err
				}
				scores = append(scores, resp.Results)
				clusters = append(clusters, resp.Clusters)
			}
			out := &keywordRouterResponse{}
			if mode == "meta" {
				out.Results = mergeScores(scores, k)
			} else {
				out.Clusters = mergeClusters(clusters, k)
			}
			return out, nil
		},
		func(v any, shardsOK string) { v.(*keywordRouterResponse).ShardsOK = shardsOK },
		func(shardsOK string) any { return &keywordRouterResponse{ShardsOK: shardsOK} },
	)
}

func (rt *Router) handleDiscover(w http.ResponseWriter, r *http.Request) {
	var req server.DiscoverRequest
	body, ok := decodeBody(w, r, &req)
	if !ok {
		return
	}
	k, err := server.CheckK(req.K)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	rel, err := discover.ParseRelation(req.Relation)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if _, err := discover.ParseJoinMode(req.Mode); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if _, err := discover.ParseUnionMethod(req.Method); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	seeds := 0
	if req.TableID != "" {
		seeds++
	}
	if req.Table != nil {
		seeds++
	}
	if len(req.Values) > 0 {
		seeds++
	}
	if seeds != 1 {
		writeError(w, http.StatusBadRequest, "exactly one of table_id, table, or values must be set")
		return
	}
	byContainment := req.Mode == "containment"
	join := rel == discover.RelationJoin

	emptyResp := func(shardsOK string) *discoverRouterResponse {
		out := &discoverRouterResponse{ShardsOK: shardsOK}
		if join {
			m := []server.JoinMatch{}
			out.Matches = &m
		} else {
			rs := []server.TableScore{}
			out.Results = &rs
		}
		return out
	}

	// Same owner-resolution dance as /v1/union: a table_id seed lives
	// on exactly one shard, so fetch it from its owner and fan out the
	// inline form (the table keeps its ID, so the owner shard still
	// excludes the seed from its own results).
	fanBody := body
	total := len(rt.shards)
	if req.TableID != "" && total > 1 {
		owner := rt.shards[snap.ShardOf(req.TableID, total)]
		if owner.state.Load().quarantined {
			rt.allDown.Inc()
			rt.markPartial('D')
			writeJSON(w, http.StatusOK, emptyResp(fmt.Sprintf("0/%d", total)))
			return
		}
		t, err := owner.client.Table(r.Context(), req.TableID)
		if err != nil {
			if apiErr, isAPI := err.(*server.APIError); isAPI && apiErr.Status/100 == 4 {
				writeError(w, apiErr.Status, apiErr.Message)
				return
			}
			owner.fails.Inc()
			rt.allDown.Inc()
			rt.markPartial('D')
			writeJSON(w, http.StatusOK, emptyResp(fmt.Sprintf("0/%d", total)))
			return
		}
		inline := req
		inline.TableID = ""
		inline.Table = &server.InlineTable{ID: t.ID, Name: t.Name, Columns: t.Columns}
		fanBody, err = json.Marshal(inline)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "encoding shard request: "+err.Error())
			return
		}
	}

	rt.gather(w, r, 'D', "/v1/discover", body, fanBody,
		func(bodies [][]byte) (any, error) {
			matchLists := make([][]server.JoinMatch, 0, len(bodies))
			scoreLists := make([][]server.TableScore, 0, len(bodies))
			explains := make([][]discover.StageExplain, 0, len(bodies))
			for _, b := range bodies {
				var resp server.DiscoverResponse
				if err := json.Unmarshal(b, &resp); err != nil {
					return nil, err
				}
				if resp.Matches != nil {
					matchLists = append(matchLists, *resp.Matches)
				}
				if resp.Results != nil {
					scoreLists = append(scoreLists, *resp.Results)
				}
				explains = append(explains, resp.Explain)
			}
			out := &discoverRouterResponse{}
			if join {
				m := mergeJoinMatches(byContainment, matchLists, k)
				out.Matches = &m
			} else {
				rs := mergeScores(scoreLists, k)
				out.Results = &rs
			}
			if req.Explain {
				out.Explain = mergeExplains(explains)
			}
			return out, nil
		},
		func(v any, shardsOK string) { v.(*discoverRouterResponse).ShardsOK = shardsOK },
		func(shardsOK string) any { return emptyResp(shardsOK) },
	)
}

// --- admin & introspection ---

// handleReload is the HTTP face of ReloadAll.
func (rt *Router) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	writeJSON(w, http.StatusOK, rt.ReloadAll(r.Context()))
}

// ReloadAll rolls a reload across the shards one at a time, in shard
// order — at most one shard is loading (and briefly cold-cached) at
// any moment, so a router in front of N shards keeps serving N-1
// shards' worth of results throughout. The router cache is purged
// afterwards, and a health sweep picks up the new generations. The
// daemon's SIGHUP handler calls this too.
func (rt *Router) ReloadAll(ctx context.Context) ReloadResponse {
	out := make([]ReloadShard, len(rt.shards))
	okCount := 0
	for i, sh := range rt.shards {
		out[i] = ReloadShard{Shard: i}
		status, body, err := rt.postShard(ctx, sh, "/v1/admin/reload", nil)
		if err != nil {
			out[i].Error = err.Error()
			continue
		}
		if status/100 != 2 {
			var e server.ErrorResponse
			if json.Unmarshal(body, &e) == nil && e.Error != "" {
				out[i].Error = e.Error
			} else {
				out[i].Error = fmt.Sprintf("shard returned %d", status)
			}
			continue
		}
		var resp server.ReloadResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			out[i].Error = "parsing shard response: " + err.Error()
			continue
		}
		out[i].OK = true
		out[i].Generation = resp.Generation
		out[i].Tables = resp.Tables
		okCount++
	}
	rt.cache.Purge()
	rt.CheckShards(ctx)
	return ReloadResponse{
		ShardsOK: fmt.Sprintf("%d/%d", okCount, len(rt.shards)),
		Shards:   out,
	}
}

// shardStatuses snapshots the health loop's view of every shard and
// the count currently serving.
func (rt *Router) shardStatuses() ([]ShardStatus, int) {
	out := make([]ShardStatus, len(rt.shards))
	up := 0
	for i, sh := range rt.shards {
		st := sh.state.Load()
		out[i] = ShardStatus{
			Shard: i, Addr: sh.addr,
			Up: st.up, Quarantined: st.quarantined,
			Generation: st.generation, Tables: st.tables,
			ManifestHash: st.manifestHash,
		}
		if st.up && !st.quarantined {
			up++
		}
	}
	return out, up
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	shards, up := rt.shardStatuses()
	status := "ok"
	switch {
	case up == 0:
		status = "down"
	case up < len(shards):
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        status,
		UptimeSeconds: time.Since(rt.start).Seconds(),
		ShardsOK:      fmt.Sprintf("%d/%d", up, len(shards)),
		Shards:        shards,
	})
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	shards, up := rt.shardStatuses()
	cs := rt.cache.Stats()
	uptime := time.Since(rt.start).Seconds()
	eps := make(map[string]server.EndpointStats, len(rt.endpoints))
	for name, m := range rt.endpoints {
		reqs := m.requests.Value()
		qps := 0.0
		if uptime > 0 {
			qps = float64(reqs) / uptime
		}
		eps[name] = server.EndpointStats{
			Requests: reqs,
			Errors:   m.errors.Value(),
			QPS:      qps,
			P50Ms:    float64(m.latency.Quantile(0.5)) / float64(time.Millisecond),
			P95Ms:    float64(m.latency.Quantile(0.95)) / float64(time.Millisecond),
			P99Ms:    float64(m.latency.Quantile(0.99)) / float64(time.Millisecond),
		}
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeSeconds: uptime,
		ShardsOK:      fmt.Sprintf("%d/%d", up, len(shards)),
		Partials:      rt.partials.Value(),
		Cache: server.CacheStats{
			Hits: cs.Hits, Misses: cs.Misses, Evictions: cs.Evictions,
			Entries: cs.Entries, HitRatio: rt.cache.HitRatio(),
		},
		Endpoints: eps,
		Shards:    shards,
	})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = rt.reg.WriteText(w)
}
