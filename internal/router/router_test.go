package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"tablehound/internal/core"
	"tablehound/internal/datagen"
	"tablehound/internal/lake"
	"tablehound/internal/server"
	"tablehound/internal/snap"
	"tablehound/internal/table"
)

// --- fixture ---
//
// One synthetic lake, built once: unsharded (the ground truth every
// parity test compares against) and as a 2-way partition under the
// production assignment function (snap.ShardOf). All builds use the
// same core.Options, exactly as lakectl build -shards does.

var (
	fixOnce sync.Once
	fixGen  *datagen.Lake
	fixSys  *core.System
	fixTwo  []*core.System // 2-way partition by snap.ShardOf
	fixMan  *snap.Manifest // manifest of the 2-way partition
)

func buildOpts(gen *datagen.Lake) core.Options {
	return core.Options{KB: gen.BuildKB(0.8), Seed: 3}
}

func fixture(t *testing.T) (*datagen.Lake, *core.System, []*core.System, *snap.Manifest) {
	t.Helper()
	fixOnce.Do(func() {
		gen := datagen.Generate(datagen.Config{
			Seed:              51,
			NumDomains:        12,
			DomainSize:        80,
			NumTemplates:      5,
			TablesPerTemplate: 4,
		})
		cat := lake.NewCatalog()
		for _, tbl := range gen.Tables {
			if err := cat.Add(tbl); err != nil {
				panic(err)
			}
		}
		sys, err := core.Build(cat, buildOpts(gen))
		if err != nil {
			panic(err)
		}

		const n = 2
		parts := make([]*lake.Catalog, n)
		ids := make([][]string, n)
		for i := range parts {
			parts[i] = lake.NewCatalog()
		}
		for _, tbl := range gen.Tables {
			i := snap.ShardOf(tbl.ID, n)
			if err := parts[i].Add(tbl); err != nil {
				panic(err)
			}
			ids[i] = append(ids[i], tbl.ID)
		}
		two := make([]*core.System, n)
		man := &snap.Manifest{Assign: snap.AssignFNV1a}
		for i := range parts {
			two[i], err = core.Build(parts[i], buildOpts(gen))
			if err != nil {
				panic(err)
			}
			man.Shards = append(man.Shards, snap.ShardEntry{
				Snapshot:   fmt.Sprintf("lake.%d.snap", i),
				Generation: snap.HashIDs(ids[i]),
				Tables:     len(ids[i]),
			})
		}
		fixGen, fixSys, fixTwo, fixMan = gen, sys, two, man
	})
	return fixGen, fixSys, fixTwo, fixMan
}

// startShards serves each system as one shard of the given manifest
// and returns the shard servers plus their addresses.
func startShards(t *testing.T, systems []*core.System, man *snap.Manifest) ([]*server.Server, []*httptest.Server, []string) {
	t.Helper()
	srvs := make([]*server.Server, len(systems))
	https := make([]*httptest.Server, len(systems))
	addrs := make([]string, len(systems))
	for i, sys := range systems {
		var ident *server.ShardIdentity
		if man != nil {
			ident = &server.ShardIdentity{Index: i, Count: len(systems), ManifestHash: man.Hash()}
		}
		srvs[i] = server.New(sys, server.Config{Shard: ident})
		https[i] = httptest.NewServer(srvs[i].Handler())
		t.Cleanup(https[i].Close)
		addrs[i] = https[i].URL
	}
	return srvs, https, addrs
}

// startRouter builds a router over addrs, runs one synchronous health
// sweep, and serves it.
func startRouter(t *testing.T, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.CheckShards(context.Background())
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(rt.Stop)
	return rt, ts
}

func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return postBytes(t, url, b)
}

func postBytes(t *testing.T, url string, b []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// --- merge property tests ---
//
// The merge contract: partition the unsharded engine's own ranking by
// the production assignment function, truncate each part to k (what a
// shard would return), merge, and the result must equal the unsharded
// top-k — same entries, same order, bit-equal scores. This isolates
// the merge from shard-local scoring (per-shard models, BM25 corpus
// stats) and so must hold for every surface and every shard count.

const fullK = 1000 // maxK: large enough to hold the full ranking

func partitionJoin(ms []server.JoinMatch, n int) [][]server.JoinMatch {
	parts := make([][]server.JoinMatch, n)
	for _, m := range ms {
		tid, _ := table.SplitColumnKey(m.ColumnKey)
		i := snap.ShardOf(tid, n)
		parts[i] = append(parts[i], m)
	}
	return parts
}

func partitionScores(rs []server.TableScore, n int) [][]server.TableScore {
	parts := make([][]server.TableScore, n)
	for _, r := range rs {
		parts[snap.ShardOf(r.TableID, n)] = append(parts[snap.ShardOf(r.TableID, n)], r)
	}
	return parts
}

func truncJoin(parts [][]server.JoinMatch, k int) [][]server.JoinMatch {
	for i := range parts {
		if len(parts[i]) > k {
			parts[i] = parts[i][:k]
		}
	}
	return parts
}

func truncScores(parts [][]server.TableScore, k int) [][]server.TableScore {
	for i := range parts {
		if len(parts[i]) > k {
			parts[i] = parts[i][:k]
		}
	}
	return parts
}

func TestMergeMatchesUnshardedJoin(t *testing.T) {
	gen, _, _, _ := fixture(t)
	_, ts, _ := startShards(t, []*core.System{fixSys}, nil)
	defer ts[0].Close()

	queries := [][]string{
		gen.Tables[0].Columns[0].Values,
		gen.Tables[7].Columns[1].Values,
		{"zz-out-of-vocabulary", "values-nowhere-in-the-lake"},
	}
	for qi, vals := range queries {
		for _, mode := range []string{"overlap", "containment"} {
			req := server.JoinRequest{Values: vals, K: fullK, Mode: mode, Threshold: 0.3}
			resp, body := post(t, ts[0].URL+"/v1/join", req)
			if resp.StatusCode != 200 {
				if qi == 2 {
					continue // OOV containment may be a 400 (no usable values)
				}
				t.Fatalf("q%d %s: status %d: %s", qi, mode, resp.StatusCode, body)
			}
			var full server.JoinResponse
			if err := json.Unmarshal(body, &full); err != nil {
				t.Fatal(err)
			}
			for _, n := range []int{1, 2, 3, 5} {
				for _, k := range []int{1, 5, len(full.Matches)} {
					if k == 0 {
						k = 1
					}
					got := mergeJoinMatches(mode == "containment", truncJoin(partitionJoin(full.Matches, n), k), k)
					want := full.Matches
					if len(want) > k {
						want = want[:k]
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("q%d %s n=%d k=%d: merged != unsharded\n got %+v\nwant %+v", qi, mode, n, k, got, want)
					}
				}
			}
		}
	}
}

func TestMergeMatchesUnshardedUnionAndKeyword(t *testing.T) {
	gen, _, _, _ := fixture(t)
	_, ts, _ := startShards(t, []*core.System{fixSys}, nil)

	var rankings [][]server.TableScore
	for _, method := range []string{"tus", "santos", "starmie", "d3l"} {
		resp, body := post(t, ts[0].URL+"/v1/union",
			server.UnionRequest{TableID: gen.Tables[0].ID, K: fullK, Method: method})
		if resp.StatusCode != 200 {
			t.Fatalf("union %s: status %d: %s", method, resp.StatusCode, body)
		}
		var out server.UnionResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		rankings = append(rankings, out.Results)
	}
	topic := gen.DomainNames[gen.Templates[0].Domains[0]]
	resp, body := post(t, ts[0].URL+"/v1/keyword", server.KeywordRequest{Query: topic, K: fullK})
	if resp.StatusCode != 200 {
		t.Fatalf("keyword: status %d: %s", resp.StatusCode, body)
	}
	var kw server.KeywordResponse
	if err := json.Unmarshal(body, &kw); err != nil {
		t.Fatal(err)
	}
	rankings = append(rankings, kw.Results)

	for ri, full := range rankings {
		for _, n := range []int{1, 2, 4} {
			for _, k := range []int{1, 3, 10} {
				got := mergeScores(truncScores(partitionScores(full, n), k), k)
				want := full
				if len(want) > k {
					want = want[:k]
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("ranking %d n=%d k=%d: merged != unsharded\n got %+v\nwant %+v", ri, n, k, got, want)
				}
			}
		}
	}
}

// Duplicate scores must tie-break identically to the engines: by key,
// ascending — regardless of which shard list an entry arrived in.
func TestMergeTieBreaks(t *testing.T) {
	s := func(id string, sc float64) server.TableScore { return server.TableScore{TableID: id, Score: sc} }
	got := mergeScores([][]server.TableScore{
		{s("t9", 2), s("t3", 1)},
		{s("t1", 2), s("t2", 1)},
	}, 3)
	want := []server.TableScore{s("t1", 2), s("t9", 2), s("t2", 1)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("mergeScores ties: got %+v, want %+v", got, want)
	}

	m := func(key string, ov int, ct float64) server.JoinMatch {
		return server.JoinMatch{ColumnKey: key, Overlap: ov, Containment: ct}
	}
	gotJ := mergeJoinMatches(false, [][]server.JoinMatch{
		{m("b.x", 5, 0.1), m("a.z", 3, 0.9)},
		{m("a.y", 5, 0.2)},
	}, 3)
	wantJ := []server.JoinMatch{m("a.y", 5, 0.2), m("b.x", 5, 0.1), m("a.z", 3, 0.9)}
	if !reflect.DeepEqual(gotJ, wantJ) {
		t.Errorf("mergeJoinMatches overlap ties: got %+v, want %+v", gotJ, wantJ)
	}
	gotC := mergeJoinMatches(true, [][]server.JoinMatch{
		{m("b.x", 5, 0.5)},
		{m("a.y", 1, 0.5), m("c.w", 9, 0.4)},
	}, 3)
	wantC := []server.JoinMatch{m("a.y", 1, 0.5), m("b.x", 5, 0.5), m("c.w", 9, 0.4)}
	if !reflect.DeepEqual(gotC, wantC) {
		t.Errorf("mergeJoinMatches containment ties: got %+v, want %+v", gotC, wantC)
	}
}

func TestMergeClusters(t *testing.T) {
	c := func(score float64, schema []string, ids ...string) server.ValueCluster {
		return server.ValueCluster{Schema: schema, TableIDs: ids, Score: score}
	}
	// Single list passes through unchanged (the 1-shard parity case).
	one := []server.ValueCluster{c(2, []string{"a", "b"}, "t1", "t2"), c(1, []string{"c"}, "t3")}
	if got := mergeClusters([][]server.ValueCluster{one}, 10); !reflect.DeepEqual(got, one) {
		t.Errorf("single-list pass-through: got %+v, want %+v", got, one)
	}
	// Same-schema clusters fold: score is the max, members concatenate
	// in shard order; ordering is (score desc, schema asc).
	got := mergeClusters([][]server.ValueCluster{
		{c(2, []string{"a", "b"}, "t1"), c(3, []string{"z"}, "t9")},
		{c(2.5, []string{"a", "b"}, "t2")},
	}, 10)
	want := []server.ValueCluster{
		c(3, []string{"z"}, "t9"),
		c(2.5, []string{"a", "b"}, "t1", "t2"),
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fold: got %+v, want %+v", got, want)
	}
	// The member budget k caps total tables across clusters.
	got = mergeClusters([][]server.ValueCluster{
		{c(2, []string{"a"}, "t1", "t2"), c(1, []string{"b"}, "t3", "t4")},
	}, 3)
	want = []server.ValueCluster{c(2, []string{"a"}, "t1", "t2"), c(1, []string{"b"}, "t3")}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("budget: got %+v, want %+v", got, want)
	}
}

// --- 1-shard byte parity ---
//
// A router over a single (unsharded) server must return byte-identical
// bodies on every endpoint, success and error alike.

func TestSingleShardByteParity(t *testing.T) {
	gen, sys, _, _ := fixture(t)
	_, direct, addrs := startShards(t, []*core.System{sys}, nil)
	_, routed := startRouter(t, Config{Addrs: addrs})

	qt := gen.Tables[0]
	inline := &server.InlineTable{ID: "q", Name: qt.Name}
	for _, c := range qt.Columns {
		inline.Columns = append(inline.Columns, server.InlineColumn{Name: c.Name, Values: c.Values})
	}
	topic := gen.DomainNames[gen.Templates[0].Domains[0]]

	cases := []struct {
		name string
		path string
		req  any
	}{
		{"join overlap", "/v1/join", server.JoinRequest{Values: qt.Columns[0].Values, K: 5}},
		{"join containment", "/v1/join", server.JoinRequest{Values: qt.Columns[0].Values, K: 5, Mode: "containment"}},
		{"join bad mode", "/v1/join", server.JoinRequest{Values: qt.Columns[0].Values, K: 5, Mode: "fuzzy"}},
		{"union tus by id", "/v1/union", server.UnionRequest{TableID: qt.ID, K: 5}},
		{"union starmie by id", "/v1/union", server.UnionRequest{TableID: qt.ID, K: 5, Method: "starmie"}},
		{"union inline", "/v1/union", server.UnionRequest{Table: inline, K: 5}},
		{"union bad method", "/v1/union", server.UnionRequest{TableID: qt.ID, K: 5, Method: "psychic"}},
		{"union both set", "/v1/union", server.UnionRequest{TableID: qt.ID, Table: inline, K: 5}},
		{"union unknown table", "/v1/union", server.UnionRequest{TableID: "no-such-table", K: 5}},
		{"keyword meta", "/v1/keyword", server.KeywordRequest{Query: topic, K: 5}},
		{"keyword values", "/v1/keyword", server.KeywordRequest{Query: qt.Columns[0].Values[0], K: 5, Mode: "values"}},
		{"keyword bad mode", "/v1/keyword", server.KeywordRequest{Query: topic, K: 5, Mode: "psychic"}},
		{"keyword oov", "/v1/keyword", server.KeywordRequest{Query: "zz-absent-everywhere", K: 5}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dResp, dBody := post(t, direct[0].URL+c.path, c.req)
			rResp, rBody := post(t, routed.URL+c.path, c.req)
			if dResp.StatusCode != rResp.StatusCode {
				t.Fatalf("status: direct %d, routed %d (%s vs %s)", dResp.StatusCode, rResp.StatusCode, dBody, rBody)
			}
			if !bytes.Equal(dBody, rBody) {
				t.Errorf("body mismatch:\ndirect %s\nrouted %s", dBody, rBody)
			}
		})
	}

	t.Run("malformed json", func(t *testing.T) {
		dResp, dBody := postBytes(t, direct[0].URL+"/v1/join", []byte("{nope"))
		rResp, rBody := postBytes(t, routed.URL+"/v1/join", []byte("{nope"))
		if dResp.StatusCode != rResp.StatusCode || !bytes.Equal(dBody, rBody) {
			t.Errorf("direct %d %s, routed %d %s", dResp.StatusCode, dBody, rResp.StatusCode, rBody)
		}
	})
	t.Run("method not allowed", func(t *testing.T) {
		dResp, err := http.Get(direct[0].URL + "/v1/join")
		if err != nil {
			t.Fatal(err)
		}
		dBody, _ := io.ReadAll(dResp.Body)
		dResp.Body.Close()
		rResp, err := http.Get(routed.URL + "/v1/join")
		if err != nil {
			t.Fatal(err)
		}
		rBody, _ := io.ReadAll(rResp.Body)
		rResp.Body.Close()
		if dResp.StatusCode != rResp.StatusCode || !bytes.Equal(dBody, rBody) {
			t.Errorf("direct %d %s, routed %d %s", dResp.StatusCode, dBody, rResp.StatusCode, rBody)
		}
	})
}

// --- 2-shard end-to-end ---

// Join overlap scoring is query-local (exact value overlap between the
// query column and each indexed column), so a 2-shard router must
// reproduce the unsharded ranking bit for bit over real shard-built
// systems — the strongest end-to-end check available.
func TestTwoShardJoinOverlapParity(t *testing.T) {
	gen, sys, two, man := fixture(t)
	_, direct, _ := startShards(t, []*core.System{sys}, nil)
	_, _, addrs := startShards(t, two, man)
	_, routed := startRouter(t, Config{Addrs: addrs})

	for _, qi := range []int{0, 5, 13} {
		for _, k := range []int{3, 10, 50} {
			req := server.JoinRequest{Values: gen.Tables[qi].Columns[0].Values, K: k}
			dResp, dBody := post(t, direct[0].URL+"/v1/join", req)
			rResp, rBody := post(t, routed.URL+"/v1/join", req)
			if dResp.StatusCode != 200 || rResp.StatusCode != 200 {
				t.Fatalf("q%d k=%d: status direct %d routed %d", qi, k, dResp.StatusCode, rResp.StatusCode)
			}
			if !bytes.Equal(dBody, rBody) {
				t.Errorf("q%d k=%d: 2-shard merge != unsharded\ndirect %s\nrouted %s", qi, k, dBody, rBody)
			}
		}
	}
}

// A table_id union query is relocated: the router fetches the table
// from its owner shard and fans out the inline form, so shards that do
// not hold the table still contribute candidates.
func TestTwoShardUnionByTableID(t *testing.T) {
	gen, _, two, man := fixture(t)
	_, _, addrs := startShards(t, two, man)
	_, routed := startRouter(t, Config{Addrs: addrs})

	// Pick one table from each shard as the query.
	for n := 0; n < 2; n++ {
		var qt *table.Table
		for _, tbl := range gen.Tables {
			if snap.ShardOf(tbl.ID, 2) == n {
				qt = tbl
				break
			}
		}
		resp, body := post(t, routed.URL+"/v1/union", server.UnionRequest{TableID: qt.ID, K: 10})
		if resp.StatusCode != 200 {
			t.Fatalf("shard-%d table: status %d: %s", n, resp.StatusCode, body)
		}
		var out unionRouterResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.ShardsOK != "" {
			t.Errorf("complete response carries shards_ok %q", out.ShardsOK)
		}
		if len(out.Results) == 0 {
			t.Fatalf("no results for %s", qt.ID)
		}
		seen := map[int]bool{}
		for _, r := range out.Results {
			if r.TableID == qt.ID {
				t.Errorf("query table %s in its own results", qt.ID)
			}
			seen[snap.ShardOf(r.TableID, 2)] = true
		}
		if len(seen) != 2 {
			t.Errorf("results from shards %v, want both (the lake's templates span shards)", seen)
		}
	}

	// Unknown table: the owner's deterministic 404 propagates verbatim.
	resp, body := post(t, routed.URL+"/v1/union", server.UnionRequest{TableID: "no-such-table", K: 3})
	if resp.StatusCode != 404 {
		t.Fatalf("unknown table: status %d: %s", resp.StatusCode, body)
	}
	if want := `{"error":"table \"no-such-table\": not found"}`; string(body) != want {
		t.Errorf("404 body %s, want %s", body, want)
	}
}

// --- graceful degradation ---

func TestDegradation(t *testing.T) {
	gen, _, two, man := fixture(t)
	_, https, addrs := startShards(t, two, man)
	rt, routed := startRouter(t, Config{Addrs: addrs})

	join := server.JoinRequest{Values: gen.Tables[0].Columns[0].Values, K: 5}
	kw := server.KeywordRequest{Query: gen.DomainNames[0], K: 5}

	// Both up: complete, no shards_ok field at all.
	_, body := post(t, routed.URL+"/v1/join", join)
	if strings.Contains(string(body), "shards_ok") {
		t.Errorf("complete response mentions shards_ok: %s", body)
	}

	// Kill shard 1: every endpoint stays 200 and reports 1/2.
	https[1].Close()
	for _, c := range []struct {
		path string
		req  any
	}{{"/v1/join", join}, {"/v1/keyword", kw}} {
		resp, body := post(t, routed.URL+c.path, c.req)
		if resp.StatusCode != 200 {
			t.Fatalf("%s with shard down: status %d: %s", c.path, resp.StatusCode, body)
		}
		var partial struct {
			ShardsOK string `json:"shards_ok"`
		}
		if err := json.Unmarshal(body, &partial); err != nil {
			t.Fatal(err)
		}
		if partial.ShardsOK != "1/2" {
			t.Errorf("%s shards_ok = %q, want 1/2 (%s)", c.path, partial.ShardsOK, body)
		}
	}

	// A table_id union whose owner is the dead shard degrades to an
	// empty 200, not an error.
	var deadOwned *table.Table
	for _, tbl := range gen.Tables {
		if snap.ShardOf(tbl.ID, 2) == 1 {
			deadOwned = tbl
			break
		}
	}
	resp, body := post(t, routed.URL+"/v1/union", server.UnionRequest{TableID: deadOwned.ID, K: 5})
	if resp.StatusCode != 200 {
		t.Fatalf("owner-down union: status %d: %s", resp.StatusCode, body)
	}
	var uout unionRouterResponse
	if err := json.Unmarshal(body, &uout); err != nil {
		t.Fatal(err)
	}
	if uout.ShardsOK != "0/2" || uout.Results == nil || len(uout.Results) != 0 {
		t.Errorf("owner-down union = %s, want empty results and shards_ok 0/2", body)
	}

	// Kill shard 0 too: still 200, shards_ok 0/2, never a 5xx.
	https[0].Close()
	resp, body = post(t, routed.URL+"/v1/join", join)
	if resp.StatusCode != 200 {
		t.Fatalf("all shards down: status %d: %s", resp.StatusCode, body)
	}
	var jout joinRouterResponse
	if err := json.Unmarshal(body, &jout); err != nil {
		t.Fatal(err)
	}
	if jout.ShardsOK != "0/2" || jout.Matches == nil || len(jout.Matches) != 0 {
		t.Errorf("all-down join = %s, want empty matches and shards_ok 0/2", body)
	}

	// The health sweep notices and /healthz degrades (but stays 200).
	rt.CheckShards(context.Background())
	hr, err := http.Get(routed.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hBody, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	var h HealthResponse
	if err := json.Unmarshal(hBody, &h); err != nil {
		t.Fatal(err)
	}
	if hr.StatusCode != 200 || h.Status != "down" || h.ShardsOK != "0/2" {
		t.Errorf("all-down healthz = %d %s", hr.StatusCode, hBody)
	}
}

// --- manifest policing ---

func TestManifestMismatchQuarantine(t *testing.T) {
	gen, _, two, man := fixture(t)

	// Shard 1 claims a different manifest hash: it was built from some
	// other partitioning and must not contribute results.
	srv0 := server.New(two[0], server.Config{Shard: &server.ShardIdentity{Index: 0, Count: 2, ManifestHash: man.Hash()}})
	srv1 := server.New(two[1], server.Config{Shard: &server.ShardIdentity{Index: 1, Count: 2, ManifestHash: man.Hash() + 1}})
	ts0 := httptest.NewServer(srv0.Handler())
	ts1 := httptest.NewServer(srv1.Handler())
	t.Cleanup(ts0.Close)
	t.Cleanup(ts1.Close)

	rt, routed := startRouter(t, Config{Addrs: []string{ts0.URL, ts1.URL}})
	if up := rt.CheckShards(context.Background()); up != 1 {
		t.Fatalf("CheckShards = %d up, want 1 (mismatched shard quarantined)", up)
	}

	resp, body := post(t, routed.URL+"/v1/join",
		server.JoinRequest{Values: gen.Tables[0].Columns[0].Values, K: 5})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out joinRouterResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.ShardsOK != "1/2" {
		t.Errorf("shards_ok = %q, want 1/2 (quarantined shard excluded)", out.ShardsOK)
	}

	hr, err := http.Get(routed.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if h.Status != "degraded" || !h.Shards[1].Quarantined {
		t.Errorf("healthz = %+v, want degraded with shard 1 quarantined", h)
	}

	// A shard reporting the wrong arity is quarantined too.
	srvBad := server.New(two[1], server.Config{Shard: &server.ShardIdentity{Index: 1, Count: 3, ManifestHash: man.Hash()}})
	tsBad := httptest.NewServer(srvBad.Handler())
	t.Cleanup(tsBad.Close)
	rt2, _ := startRouter(t, Config{Addrs: []string{ts0.URL, tsBad.URL}})
	if up := rt2.CheckShards(context.Background()); up != 1 {
		t.Errorf("wrong-arity shard not quarantined: %d up", up)
	}
}

// --- cache: complete responses only ---

func TestCacheCompleteOnly(t *testing.T) {
	gen, _, two, man := fixture(t)
	_, https, addrs := startShards(t, two, man)
	rt, routed := startRouter(t, Config{Addrs: addrs, CacheEntries: 64})

	join := server.JoinRequest{Values: gen.Tables[0].Columns[0].Values, K: 5}

	// Complete answers cache: second identical request is a HIT with
	// identical bytes.
	r1, b1 := post(t, routed.URL+"/v1/join", join)
	r2, b2 := post(t, routed.URL+"/v1/join", join)
	if r1.Header.Get("X-Cache") != "MISS" || r2.Header.Get("X-Cache") != "HIT" {
		t.Errorf("X-Cache = %q then %q, want MISS then HIT", r1.Header.Get("X-Cache"), r2.Header.Get("X-Cache"))
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("cache hit bytes differ: %s vs %s", b1, b2)
	}

	// Partial answers never cache: with a shard down, repeated requests
	// keep missing.
	https[1].Close()
	other := server.JoinRequest{Values: gen.Tables[3].Columns[0].Values, K: 5}
	p1, pb := post(t, routed.URL+"/v1/join", other)
	p2, _ := post(t, routed.URL+"/v1/join", other)
	if !strings.Contains(string(pb), `"shards_ok":"1/2"`) {
		t.Fatalf("expected a partial answer, got %s", pb)
	}
	if p1.Header.Get("X-Cache") != "MISS" || p2.Header.Get("X-Cache") != "MISS" {
		t.Errorf("partial X-Cache = %q then %q, want MISS twice", p1.Header.Get("X-Cache"), p2.Header.Get("X-Cache"))
	}

	// The complete entry from before the outage is still served — a
	// shard going down changes no snapshot generation, so answers that
	// were complete when computed stay valid. Even after a health
	// sweep observes the outage, the entry survives; only a generation
	// change (see TestRollingReload) purges.
	rt.CheckShards(context.Background())
	r3, b3 := post(t, routed.URL+"/v1/join", join)
	if r3.Header.Get("X-Cache") != "HIT" || !bytes.Equal(b1, b3) {
		t.Errorf("pre-outage entry: X-Cache %q", r3.Header.Get("X-Cache"))
	}
}

// --- rolling reload ---

func TestRollingReload(t *testing.T) {
	gen, _, two, man := fixture(t)
	srvs, _, addrs := startShards(t, two, man)
	for i, s := range srvs {
		sys := two[i]
		s.SetReloader(func() (*core.System, error) { return sys, nil })
	}
	rt, routed := startRouter(t, Config{Addrs: addrs, CacheEntries: 64})

	// Warm the cache, then reload: the entry must not survive.
	join := server.JoinRequest{Values: gen.Tables[0].Columns[0].Values, K: 5}
	post(t, routed.URL+"/v1/join", join)

	resp, body := post(t, routed.URL+"/v1/admin/reload", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("reload status %d: %s", resp.StatusCode, body)
	}
	var out ReloadResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.ShardsOK != "2/2" {
		t.Errorf("reload shards_ok = %q, want 2/2 (%s)", out.ShardsOK, body)
	}
	for _, sh := range out.Shards {
		if !sh.OK || sh.Generation != 1 {
			t.Errorf("shard %d reload = %+v, want ok at generation 1", sh.Shard, sh)
		}
	}
	if rt.cache.Len() != 0 {
		t.Errorf("cache holds %d entries after reload, want 0", rt.cache.Len())
	}
	r, _ := post(t, routed.URL+"/v1/join", join)
	if r.Header.Get("X-Cache") != "MISS" {
		t.Errorf("post-reload X-Cache = %q, want MISS", r.Header.Get("X-Cache"))
	}
}

// --- metrics surface ---

func TestRouterMetrics(t *testing.T) {
	gen, _, two, man := fixture(t)
	_, https, addrs := startShards(t, two, man)
	rt, routed := startRouter(t, Config{Addrs: addrs})

	post(t, routed.URL+"/v1/join", server.JoinRequest{Values: gen.Tables[0].Columns[0].Values, K: 5})
	https[1].Close()
	post(t, routed.URL+"/v1/join", server.JoinRequest{Values: gen.Tables[0].Columns[0].Values, K: 5})
	rt.CheckShards(context.Background())

	resp, err := http.Get(routed.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, w := range []string{
		`lakerouter_shard_up{shard="0"} 1`,
		`lakerouter_shard_up{shard="1"} 0`,
		`lakerouter_partial_responses_total 1`,
		`lakerouter_requests_total{endpoint="join"} 2`,
	} {
		if !strings.Contains(text, w) {
			t.Errorf("metrics missing %q:\n%s", w, text)
		}
	}

	sresp, err := http.Get(routed.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.ShardsOK != "1/2" || st.Partials != 1 || st.Endpoints["join"].Requests != 2 {
		t.Errorf("stats = %+v", st)
	}
}

// Routers refuse to start with nothing to route to, and health
// checking respects its timeout.
func TestRouterConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New with no addrs succeeded")
	}
	rt, err := New(Config{Addrs: []string{"127.0.0.1:1"}, ShardTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	start := time.Now()
	if up := rt.CheckShards(context.Background()); up != 0 {
		t.Errorf("CheckShards against a dead port = %d up", up)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("health check took %v, timeout not applied", el)
	}
}
