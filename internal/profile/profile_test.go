package profile

import (
	"fmt"
	"strings"
	"testing"

	"tablehound/internal/table"
)

func demoTables() []*table.Table {
	sales := table.MustNew("sales", "sales", []*table.Column{
		table.NewColumn("store", []string{"s1", "s2", "s3", "s1"}),
		table.NewColumn("amount", []string{"10.5", "20", "5", "100"}),
		table.NewColumn("day", []string{"2020-01-01", "2020-06-15", "2021-02-02", "2020-03-03"}),
	})
	temps := table.MustNew("temps", "temps", []*table.Column{
		table.NewColumn("city", []string{"boston", "nyc", "chicago"}),
		table.NewColumn("celsius", []string{"-5", "0", "30"}),
		table.NewColumn("when", []string{"2023/01/01", "2023/07/01", "2023/12/31"}),
	})
	ids := table.MustNew("ids", "ids", []*table.Column{
		table.NewColumn("uid", []string{"u1", "u2", "u3", "u4", "u5", "u6", "u7", "u8", "u9", "u10"}),
		table.NewColumn("note", []string{"a", "a", "a", "a", "a", "a", "a", "a", "a", ""}),
	})
	return []*table.Table{sales, temps, ids}
}

func TestBuildProfile(t *testing.T) {
	tp := Build(demoTables()[0])
	if tp.TableID != "sales" || tp.Rows != 4 {
		t.Fatalf("profile header = %+v", tp)
	}
	amt, ok := tp.Column("amount")
	if !ok || !amt.Type.IsNumeric() {
		t.Fatal("amount not numeric")
	}
	if amt.Min != 5 || amt.Max != 100 {
		t.Errorf("amount range = [%v, %v]", amt.Min, amt.Max)
	}
	if amt.Mean != (10.5+20+5+100)/4 {
		t.Errorf("mean = %v", amt.Mean)
	}
	day, _ := tp.Column("day")
	if day.MinDate != "2020-01-01" || day.MaxDate != "2021-02-02" {
		t.Errorf("day coverage = [%s, %s]", day.MinDate, day.MaxDate)
	}
	store, _ := tp.Column("store")
	if store.Cardinality != 3 {
		t.Errorf("store cardinality = %d", store.Cardinality)
	}
	if _, ok := tp.Column("nope"); ok {
		t.Error("missing column reported")
	}
}

func TestSlashDatesNormalized(t *testing.T) {
	tp := Build(demoTables()[1])
	when, _ := tp.Column("when")
	if when.MinDate != "2023-01-01" || when.MaxDate != "2023-12-31" {
		t.Errorf("slash dates = [%s, %s]", when.MinDate, when.MaxDate)
	}
}

func TestKMVCardinalityOnLargeColumn(t *testing.T) {
	vals := make([]string, 20000)
	for i := range vals {
		vals[i] = fmt.Sprintf("v%d", i%5000)
	}
	tp := Build(table.MustNew("big", "big", []*table.Column{table.NewColumn("x", vals)}))
	c, _ := tp.Column("x")
	if c.Cardinality < 4000 || c.Cardinality > 6000 {
		t.Errorf("estimated cardinality = %d, want ~5000", c.Cardinality)
	}
}

func TestNumericRangeSearch(t *testing.T) {
	ix := NewIndex(demoTables())
	// [0, 50] overlaps amount ([5,100] clipped to [5,50], 90% of span)
	// and celsius ([-5,30] clipped to [0,30], 60%).
	hits := ix.NumericRangeSearch(0, 50, 0.5)
	if len(hits) != 2 {
		t.Fatalf("hits = %+v", hits)
	}
	if hits[0].TableID != "sales" || hits[1].TableID != "temps" {
		t.Errorf("hits = %+v", hits)
	}
	// Demand near-full overlap: only amount survives.
	hits = ix.NumericRangeSearch(0, 50, 0.8)
	if len(hits) != 1 || hits[0].Column != "amount" {
		t.Errorf("strict hits = %+v", hits)
	}
	// Disjoint range.
	if hits := ix.NumericRangeSearch(5000, 9000, 0.1); len(hits) != 0 {
		t.Errorf("disjoint range hits = %+v", hits)
	}
	// Reversed bounds are normalized.
	if hits := ix.NumericRangeSearch(50, 0, 0.5); len(hits) != 2 {
		t.Errorf("reversed bounds hits = %+v", hits)
	}
}

func TestTemporalSearch(t *testing.T) {
	ix := NewIndex(demoTables())
	hits := ix.TemporalSearch("2020-06-01", "2020-12-31")
	if len(hits) != 1 || hits[0].TableID != "sales" {
		t.Errorf("2020 hits = %+v", hits)
	}
	hits = ix.TemporalSearch("2023/06/01", "2023/06/30")
	if len(hits) != 1 || hits[0].TableID != "temps" {
		t.Errorf("2023 hits = %+v", hits)
	}
	if hits := ix.TemporalSearch("1990-01-01", "1991-01-01"); len(hits) != 0 {
		t.Errorf("ancient hits = %+v", hits)
	}
}

func TestKeyCandidates(t *testing.T) {
	ix := NewIndex(demoTables())
	hits := ix.KeyCandidates(0.9, 5)
	// Only ids.uid is unique enough with >= 5 rows; note has card 1
	// and nulls; sales/temps have < 5 rows.
	if len(hits) != 1 || hits[0].TableID != "ids" || hits[0].Column != "uid" {
		t.Errorf("key candidates = %+v", hits)
	}
}

func TestIndexAccessors(t *testing.T) {
	ix := NewIndex(demoTables())
	if ix.Len() != 3 {
		t.Errorf("Len = %d", ix.Len())
	}
	if _, ok := ix.Profile("sales"); !ok {
		t.Error("Profile lookup failed")
	}
	if _, ok := ix.Profile("nope"); ok {
		t.Error("missing profile reported")
	}
	tp, _ := ix.Profile("sales")
	s := tp.FormatSummary()
	if !strings.Contains(s, "amount") || !strings.Contains(s, "range=") {
		t.Errorf("summary = %q", s)
	}
}
