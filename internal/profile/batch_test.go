package profile

import (
	"reflect"
	"testing"
)

// TestNewIndexNMatchesSequential checks the parallel profiler's parity
// contract: NewIndexN at any worker count builds the same index as the
// sequential NewIndex, including duplicate-ID handling.
func TestNewIndexNMatchesSequential(t *testing.T) {
	tables := demoTables()
	tables = append(tables, tables[0]) // duplicate ID, must be dropped once
	want := NewIndex(tables)
	for _, workers := range []int{1, 4} {
		got := NewIndexN(tables, workers)
		if got.Len() != want.Len() {
			t.Fatalf("workers=%d: Len = %d, want %d", workers, got.Len(), want.Len())
		}
		for _, tbl := range tables {
			gp, gok := got.Profile(tbl.ID)
			wp, wok := want.Profile(tbl.ID)
			if gok != wok || !reflect.DeepEqual(gp, wp) {
				t.Errorf("workers=%d: profile %s differs", workers, tbl.ID)
			}
		}
	}
}
