// Package profile implements Auctus-style dataset profiling and
// profile-based search (Castelo et al., VLDB 2021; Section 2.6 of the
// tutorial): each table gets a compact profile — per-column type,
// cardinality estimate, numeric range, temporal coverage — and a
// ProfileIndex answers the structured queries dataset-search portals
// expose: "tables with a numeric column covering [a, b]", "tables
// with data for 2019–2021", "tables joinable on a high-cardinality
// key".
package profile

import (
	"sort"
	"strconv"
	"strings"

	"tablehound/internal/parallel"
	"tablehound/internal/sketch"
	"tablehound/internal/table"
)

// ColumnProfile summarizes one column.
type ColumnProfile struct {
	Name         string
	Type         table.Type
	Cardinality  int     // estimated distinct count (exact when small)
	NullFraction float64 // fraction of missing values
	// Numeric columns only.
	Min, Max float64
	Mean     float64
	// Date columns only: ISO dates bounding the coverage.
	MinDate, MaxDate string
}

// TableProfile summarizes one table.
type TableProfile struct {
	TableID string
	Rows    int
	Columns []ColumnProfile
}

// kmvThreshold switches cardinality estimation from exact counting to
// a KMV sketch.
const kmvThreshold = 1 << 14

// Build profiles a table.
func Build(t *table.Table) TableProfile {
	tp := TableProfile{TableID: t.ID, Rows: t.NumRows()}
	for _, c := range t.Columns {
		cp := ColumnProfile{
			Name:         c.Name,
			Type:         c.Type,
			NullFraction: c.NullFraction(),
		}
		cp.Cardinality = estimateCardinality(c)
		switch {
		case c.Type.IsNumeric():
			nums, n := c.Numbers()
			if n > 0 {
				cp.Min, cp.Max = nums[0], nums[0]
				var sum float64
				for _, v := range nums {
					if v < cp.Min {
						cp.Min = v
					}
					if v > cp.Max {
						cp.Max = v
					}
					sum += v
				}
				cp.Mean = sum / float64(n)
			}
		case c.Type == table.TypeDate:
			lo, hi := "", ""
			for _, v := range c.Values {
				v = strings.TrimSpace(v)
				if v == "" {
					continue
				}
				iso := normalizeDate(v)
				if lo == "" || iso < lo {
					lo = iso
				}
				if hi == "" || iso > hi {
					hi = iso
				}
			}
			cp.MinDate, cp.MaxDate = lo, hi
		}
		tp.Columns = append(tp.Columns, cp)
	}
	return tp
}

func estimateCardinality(c *table.Column) int {
	if c.Len() < kmvThreshold {
		return c.Cardinality()
	}
	s := sketch.NewKMV(256)
	for _, v := range c.Values {
		if v != "" {
			s.Add(v)
		}
	}
	return int(s.Estimate() + 0.5)
}

// normalizeDate maps YYYY/MM/DD to YYYY-MM-DD so string comparison
// orders dates.
func normalizeDate(v string) string {
	return strings.ReplaceAll(v, "/", "-")
}

// Column returns the profile of the named column, if present.
func (tp TableProfile) Column(name string) (ColumnProfile, bool) {
	for _, c := range tp.Columns {
		if c.Name == name {
			return c, true
		}
	}
	return ColumnProfile{}, false
}

// Index answers profile-based structured dataset search.
type Index struct {
	profiles []TableProfile
	byID     map[string]int
}

// NewIndex profiles the tables.
func NewIndex(tables []*table.Table) *Index { return NewIndexN(tables, 1) }

// NewIndexN is NewIndex with workers parallel profilers. Profiles are
// computed concurrently per table and committed in input order, so the
// result is identical at any worker count.
func NewIndexN(tables []*table.Table, workers int) *Index {
	uniq := make([]*table.Table, 0, len(tables))
	seen := make(map[string]bool, len(tables))
	for _, t := range tables {
		if !seen[t.ID] {
			seen[t.ID] = true
			uniq = append(uniq, t)
		}
	}
	profs, _ := parallel.Map(len(uniq), workers, func(i int) (TableProfile, error) {
		return Build(uniq[i]), nil
	})
	ix := &Index{profiles: profs, byID: make(map[string]int, len(uniq))}
	for i, t := range uniq {
		ix.byID[t.ID] = i
	}
	return ix
}

// Profile returns a table's profile, if indexed.
func (ix *Index) Profile(tableID string) (TableProfile, bool) {
	i, ok := ix.byID[tableID]
	if !ok {
		return TableProfile{}, false
	}
	return ix.profiles[i], true
}

// Len returns the number of profiled tables.
func (ix *Index) Len() int { return len(ix.profiles) }

// Hit is one structured-search result.
type Hit struct {
	TableID string
	Column  string
}

// NumericRangeSearch finds (table, column) pairs whose numeric range
// overlaps [lo, hi] by at least minOverlap of the query span.
func (ix *Index) NumericRangeSearch(lo, hi float64, minOverlap float64) []Hit {
	if hi < lo {
		lo, hi = hi, lo
	}
	span := hi - lo
	var out []Hit
	for _, tp := range ix.profiles {
		for _, c := range tp.Columns {
			if !c.Type.IsNumeric() {
				continue
			}
			l, h := c.Min, c.Max
			if l < lo {
				l = lo
			}
			if h > hi {
				h = hi
			}
			if h < l {
				continue
			}
			if span == 0 || (h-l)/span >= minOverlap {
				out = append(out, Hit{TableID: tp.TableID, Column: c.Name})
			}
		}
	}
	sortHits(out)
	return out
}

// TemporalSearch finds (table, column) pairs whose date coverage
// intersects [from, to] (ISO strings; "/" separators accepted).
func (ix *Index) TemporalSearch(from, to string) []Hit {
	from = normalizeDate(from)
	to = normalizeDate(to)
	if to < from {
		from, to = to, from
	}
	var out []Hit
	for _, tp := range ix.profiles {
		for _, c := range tp.Columns {
			if c.Type != table.TypeDate || c.MinDate == "" {
				continue
			}
			if c.MaxDate >= from && c.MinDate <= to {
				out = append(out, Hit{TableID: tp.TableID, Column: c.Name})
			}
		}
	}
	sortHits(out)
	return out
}

// KeyCandidates finds columns that look like join keys: distinct
// ratio >= uniqueness and at least minRows rows — the filter Auctus
// applies before offering join augmentations.
func (ix *Index) KeyCandidates(uniqueness float64, minRows int) []Hit {
	var out []Hit
	for _, tp := range ix.profiles {
		if tp.Rows < minRows {
			continue
		}
		for _, c := range tp.Columns {
			if c.Type.IsNumeric() {
				continue
			}
			ratio := float64(c.Cardinality) / float64(tp.Rows)
			if ratio >= uniqueness && c.NullFraction < 0.1 {
				out = append(out, Hit{TableID: tp.TableID, Column: c.Name})
			}
		}
	}
	sortHits(out)
	return out
}

func sortHits(hs []Hit) {
	sort.Slice(hs, func(i, j int) bool {
		if hs[i].TableID != hs[j].TableID {
			return hs[i].TableID < hs[j].TableID
		}
		return hs[i].Column < hs[j].Column
	})
}

// FormatSummary renders a profile as a compact one-line-per-column
// text block for CLI display.
func (tp TableProfile) FormatSummary() string {
	var b strings.Builder
	b.WriteString(tp.TableID + " (" + strconv.Itoa(tp.Rows) + " rows)\n")
	for _, c := range tp.Columns {
		b.WriteString("  " + c.Name + " " + c.Type.String() +
			" card=" + strconv.Itoa(c.Cardinality))
		switch {
		case c.Type.IsNumeric():
			b.WriteString(" range=[" + strconv.FormatFloat(c.Min, 'g', 4, 64) +
				", " + strconv.FormatFloat(c.Max, 'g', 4, 64) + "]")
		case c.Type == table.TypeDate && c.MinDate != "":
			b.WriteString(" dates=[" + c.MinDate + ", " + c.MaxDate + "]")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
