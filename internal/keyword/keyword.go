// Package keyword implements metadata keyword search over data-lake
// tables (Section 2.3 of the tutorial): the user supplies topic
// keywords and the engine ranks tables by metadata relevance, the
// query mode of OCTOPUS and Google Dataset Search. Two retrieval
// models are provided — BM25 (the default) and boolean AND/OR
// matching (the baseline benchmarks compare against).
package keyword

import (
	"math"
	"sort"
	"strings"
	"sync"

	"tablehound/internal/table"
	"tablehound/internal/tokenize"
)

// Field weights: a hit in the table name is worth more than a hit in
// the description, which beats a hit in a column header.
const (
	weightName   = 3.0
	weightTags   = 2.0
	weightDesc   = 1.5
	weightHeader = 1.0
)

// BM25 hyperparameters (standard defaults).
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// Result is one ranked table.
type Result struct {
	TableID string
	Score   float64
}

// Index is a BM25 inverted index over table metadata. Build once with
// Add + Finish; then query concurrently. Add must not run
// concurrently with anything; Search is safe for concurrent use (the
// lazy Finish it performs on first use is mutex-guarded).
type Index struct {
	docs     []string             // doc -> table ID
	termFreq []map[string]float64 // doc -> term -> weighted tf
	docLen   []float64            // weighted token count
	df       map[string]int
	avgLen   float64
	mu       sync.Mutex // guards frozen/avgLen for the lazy Finish
	frozen   bool
}

// NewIndex returns an empty metadata index.
func NewIndex() *Index {
	return &Index{df: make(map[string]int)}
}

// metadataTerms extracts weighted terms from a table's metadata.
func metadataTerms(t *table.Table) map[string]float64 {
	tf := make(map[string]float64)
	addAll := func(text string, w float64) {
		for _, tok := range tokenize.Words(text) {
			if tokenize.IsStopword(tok) {
				continue
			}
			tf[tok] += w
		}
	}
	addAll(t.Name, weightName)
	addAll(t.Description, weightDesc)
	for _, tag := range t.Tags {
		addAll(tag, weightTags)
	}
	for _, h := range t.Header() {
		addAll(strings.ReplaceAll(h, "_", " "), weightHeader)
	}
	return tf
}

// Add indexes one table's metadata.
func (ix *Index) Add(t *table.Table) {
	tf := metadataTerms(t)
	ix.docs = append(ix.docs, t.ID)
	ix.termFreq = append(ix.termFreq, tf)
	var l float64
	for term, f := range tf {
		l += f
		ix.df[term]++
	}
	ix.docLen = append(ix.docLen, l)
	ix.frozen = false
}

// Finish precomputes corpus statistics. Called implicitly by Search.
func (ix *Index) Finish() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.finishLocked()
}

func (ix *Index) finishLocked() {
	var sum float64
	for _, l := range ix.docLen {
		sum += l
	}
	if len(ix.docLen) > 0 {
		ix.avgLen = sum / float64(len(ix.docLen))
	}
	ix.frozen = true
}

// ensureFinished runs the lazy Finish exactly when needed. The mutex
// gives concurrent Searches a happens-before edge on avgLen, keeping
// the read path race-free even when no explicit Finish was called.
func (ix *Index) ensureFinished() {
	ix.mu.Lock()
	if !ix.frozen {
		ix.finishLocked()
	}
	ix.mu.Unlock()
}

// Len returns the number of indexed tables.
func (ix *Index) Len() int { return len(ix.docs) }

// idf is the BM25 idf with the standard +1 smoothing.
func (ix *Index) idf(term string) float64 {
	n := float64(len(ix.docs))
	d := float64(ix.df[term])
	return math.Log(1 + (n-d+0.5)/(d+0.5))
}

// Search ranks tables by BM25 score against the query keywords and
// returns the top k (fewer when fewer match).
func (ix *Index) Search(query string, k int) []Result {
	ix.ensureFinished()
	terms := queryTerms(query)
	if len(terms) == 0 || k <= 0 {
		return nil
	}
	var res []Result
	for d := range ix.docs {
		var score float64
		for _, t := range terms {
			f := ix.termFreq[d][t]
			if f == 0 {
				continue
			}
			norm := f * (bm25K1 + 1) / (f + bm25K1*(1-bm25B+bm25B*ix.docLen[d]/ix.avgLen))
			score += ix.idf(t) * norm
		}
		if score > 0 {
			res = append(res, Result{TableID: ix.docs[d], Score: score})
		}
	}
	sortResults(res)
	if len(res) > k {
		res = res[:k]
	}
	return res
}

// BooleanSearch is the baseline: rank by the count of distinct query
// terms present (AND-biased OR semantics), ignoring term frequency and
// rarity. requireAll restricts results to tables matching every term.
func (ix *Index) BooleanSearch(query string, k int, requireAll bool) []Result {
	terms := queryTerms(query)
	if len(terms) == 0 || k <= 0 {
		return nil
	}
	var res []Result
	for d := range ix.docs {
		matched := 0
		for _, t := range terms {
			if ix.termFreq[d][t] > 0 {
				matched++
			}
		}
		if matched == 0 || (requireAll && matched < len(terms)) {
			continue
		}
		res = append(res, Result{TableID: ix.docs[d], Score: float64(matched)})
	}
	sortResults(res)
	if len(res) > k {
		res = res[:k]
	}
	return res
}

// QueryDFs returns the document frequency of each query term,
// tokenized exactly as Search/BooleanSearch tokenize (stopwords
// dropped, duplicates kept). A cost-based planner estimates the
// boolean-AND prefilter's selectivity from these counts: a term absent
// from the corpus has DF 0 and admits nothing, a term present in every
// document has DF Len() and restricts nothing.
func (ix *Index) QueryDFs(query string) []int {
	terms := queryTerms(query)
	out := make([]int, len(terms))
	for i, t := range terms {
		out[i] = ix.df[t]
	}
	return out
}

func queryTerms(query string) []string {
	var out []string
	for _, t := range tokenize.Words(query) {
		if !tokenize.IsStopword(t) {
			out = append(out, t)
		}
	}
	return out
}

func sortResults(res []Result) {
	sort.Slice(res, func(i, j int) bool {
		if res[i].Score != res[j].Score {
			return res[i].Score > res[j].Score
		}
		return res[i].TableID < res[j].TableID
	})
}
