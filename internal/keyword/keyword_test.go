package keyword

import (
	"testing"

	"tablehound/internal/table"
)

func mkTable(id, name, desc string, tags []string, headers ...string) *table.Table {
	cols := make([]*table.Column, len(headers))
	for i, h := range headers {
		cols[i] = table.NewColumn(h, []string{"x"})
	}
	t := table.MustNew(id, name, cols)
	t.Description = desc
	t.Tags = tags
	return t
}

func demoIndex() *Index {
	ix := NewIndex()
	ix.Add(mkTable("t1", "city population", "population counts for world cities", []string{"demographics"}, "city", "population", "year"))
	ix.Add(mkTable("t2", "company revenue", "annual revenue of tech companies", []string{"finance"}, "company", "revenue"))
	ix.Add(mkTable("t3", "city weather", "daily weather observations by city", []string{"climate"}, "city", "temp", "rain"))
	ix.Add(mkTable("t4", "bird sightings", "sightings of rare birds", []string{"nature"}, "species", "count"))
	ix.Finish()
	return ix
}

func ids(rs []Result) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.TableID
	}
	return out
}

func TestSearchRanksRelevantFirst(t *testing.T) {
	ix := demoIndex()
	res := ix.Search("city population", 4)
	if len(res) == 0 || res[0].TableID != "t1" {
		t.Fatalf("top result = %v, want t1", ids(res))
	}
	// t3 matches "city" only; must rank after t1 but be present.
	found := false
	for _, r := range res {
		if r.TableID == "t3" {
			found = true
		}
		if r.TableID == "t4" {
			t.Error("irrelevant table retrieved")
		}
	}
	if !found {
		t.Error("partial match t3 missing")
	}
}

func TestSearchNameBeatsHeader(t *testing.T) {
	ix := NewIndex()
	ix.Add(mkTable("byname", "weather data", "", nil, "a", "b"))
	ix.Add(mkTable("byheader", "misc", "", nil, "weather", "b"))
	res := ix.Search("weather", 2)
	if len(res) != 2 || res[0].TableID != "byname" {
		t.Errorf("results = %v, want byname first", ids(res))
	}
}

func TestSearchEdgeCases(t *testing.T) {
	ix := demoIndex()
	if ix.Search("", 5) != nil {
		t.Error("empty query should return nil")
	}
	if ix.Search("the of and", 5) != nil {
		t.Error("stopword-only query should return nil")
	}
	if ix.Search("city", 0) != nil {
		t.Error("k=0 should return nil")
	}
	if got := ix.Search("zebra", 5); got != nil {
		t.Errorf("no-match query = %v", got)
	}
	if got := ix.Search("city", 1); len(got) != 1 {
		t.Errorf("k=1 returned %d", len(got))
	}
}

func TestBooleanSearch(t *testing.T) {
	ix := demoIndex()
	any := ix.BooleanSearch("city revenue", 10, false)
	if len(any) != 3 { // t1, t2, t3
		t.Errorf("OR matched %v", ids(any))
	}
	all := ix.BooleanSearch("city revenue", 10, true)
	if len(all) != 0 {
		t.Errorf("AND matched %v", ids(all))
	}
	all2 := ix.BooleanSearch("city population", 10, true)
	if len(all2) != 1 || all2[0].TableID != "t1" {
		t.Errorf("AND city population = %v", ids(all2))
	}
}

func TestBM25PrefersRareTerms(t *testing.T) {
	// "city" appears in two tables, "bird" in one; a doc matching the
	// rare term should outrank a doc matching the common one for a
	// two-term query matching one term each.
	ix := demoIndex()
	res := ix.Search("city bird", 4)
	if len(res) < 2 {
		t.Fatalf("results = %v", ids(res))
	}
	if res[0].TableID != "t4" {
		t.Errorf("rare-term doc should rank first, got %v", ids(res))
	}
}

func TestLen(t *testing.T) {
	if demoIndex().Len() != 4 {
		t.Error("Len wrong")
	}
}

func TestSearchWithoutExplicitFinish(t *testing.T) {
	ix := NewIndex()
	ix.Add(mkTable("t1", "solar panels", "", nil, "watts"))
	if res := ix.Search("solar", 1); len(res) != 1 {
		t.Error("Search should self-finish")
	}
	// Adding after Finish re-opens the index.
	ix.Add(mkTable("t2", "solar farms", "", nil, "acres"))
	if res := ix.Search("solar", 5); len(res) != 2 {
		t.Error("index not refreshed after Add")
	}
}
