package keyword

import (
	"math"
	"sort"
	"strings"
	"sync"

	"tablehound/internal/table"
	"tablehound/internal/tokenize"
)

// ValueIndex supports keyword search over cell values — the OCTOPUS
// SEARCH operator (Cafarella et al., VLDB 2009): queries hit the data
// itself rather than metadata, and results come back as clusters of
// same-schema tables ready for union. Add must not run concurrently
// with anything; Search/SearchClusters are safe for concurrent use
// (the lazy Finish on first use is mutex-guarded).
type ValueIndex struct {
	docs     []string
	schemas  []string             // schema signature per doc
	termFreq []map[string]float64 // doc -> term -> tf
	docLen   []float64
	df       map[string]int
	avgLen   float64
	mu       sync.Mutex // guards frozen/avgLen for the lazy Finish
	frozen   bool
}

// NewValueIndex returns an empty value index.
func NewValueIndex() *ValueIndex {
	return &ValueIndex{df: make(map[string]int)}
}

// Add indexes one table's cell values (word tokens, stopwords
// dropped, capped per column to bound skew from huge columns).
func (ix *ValueIndex) Add(t *table.Table) {
	const maxPerColumn = 2000
	tf := make(map[string]float64)
	var l float64
	for _, c := range t.Columns {
		n := 0
		for _, v := range c.Values {
			if n >= maxPerColumn {
				break
			}
			for _, w := range tokenize.Words(v) {
				if tokenize.IsStopword(w) {
					continue
				}
				tf[w]++
				l++
				n++
			}
		}
	}
	ix.docs = append(ix.docs, t.ID)
	ix.schemas = append(ix.schemas, schemaSig(t))
	ix.termFreq = append(ix.termFreq, tf)
	ix.docLen = append(ix.docLen, l)
	for term := range tf {
		ix.df[term]++
	}
	ix.frozen = false
}

func schemaSig(t *table.Table) string {
	hs := make([]string, 0, t.NumCols())
	for _, h := range t.Header() {
		hs = append(hs, tokenize.Normalize(strings.ReplaceAll(h, "_", " ")))
	}
	sort.Strings(hs)
	return strings.Join(hs, "\x1f")
}

// Finish precomputes corpus statistics; Search calls it implicitly.
func (ix *ValueIndex) Finish() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.finishLocked()
}

func (ix *ValueIndex) finishLocked() {
	var sum float64
	for _, l := range ix.docLen {
		sum += l
	}
	if len(ix.docLen) > 0 {
		ix.avgLen = sum / float64(len(ix.docLen))
	}
	ix.frozen = true
}

// ensureFinished runs the lazy Finish exactly when needed, mutex-
// guarded so concurrent Searches stay race-free.
func (ix *ValueIndex) ensureFinished() {
	ix.mu.Lock()
	if !ix.frozen {
		ix.finishLocked()
	}
	ix.mu.Unlock()
}

// Len returns the number of indexed tables.
func (ix *ValueIndex) Len() int { return len(ix.docs) }

func (ix *ValueIndex) idf(term string) float64 {
	n := float64(len(ix.docs))
	d := float64(ix.df[term])
	return math.Log(1 + (n-d+0.5)/(d+0.5))
}

// Search ranks tables by BM25 over cell values.
func (ix *ValueIndex) Search(query string, k int) []Result {
	ix.ensureFinished()
	terms := queryTerms(query)
	if len(terms) == 0 || k <= 0 {
		return nil
	}
	var res []Result
	for d := range ix.docs {
		var score float64
		for _, t := range terms {
			f := ix.termFreq[d][t]
			if f == 0 {
				continue
			}
			norm := f * (bm25K1 + 1) / (f + bm25K1*(1-bm25B+bm25B*ix.docLen[d]/ix.avgLen))
			score += ix.idf(t) * norm
		}
		if score > 0 {
			res = append(res, Result{TableID: ix.docs[d], Score: score})
		}
	}
	sortResults(res)
	if len(res) > k {
		res = res[:k]
	}
	return res
}

// Cluster is a group of same-schema result tables — OCTOPUS's unit of
// answer, directly unionable into one result table.
type Cluster struct {
	Schema   []string // sorted normalized column names
	TableIDs []string // members, best score first
	Score    float64  // best member score
}

// SearchClusters runs Search and groups the top maxTables hits by
// schema signature, clusters ordered by best member score.
func (ix *ValueIndex) SearchClusters(query string, maxTables int) []Cluster {
	hits := ix.Search(query, maxTables)
	if len(hits) == 0 {
		return nil
	}
	sigOf := make(map[string]string, len(ix.docs))
	for i, id := range ix.docs {
		sigOf[id] = ix.schemas[i]
	}
	group := make(map[string]*Cluster)
	var order []string
	for _, h := range hits {
		sig := sigOf[h.TableID]
		cl, ok := group[sig]
		if !ok {
			cols := strings.Split(sig, "\x1f")
			cl = &Cluster{Schema: cols, Score: h.Score}
			group[sig] = cl
			order = append(order, sig)
		}
		cl.TableIDs = append(cl.TableIDs, h.TableID)
	}
	out := make([]Cluster, 0, len(order))
	for _, sig := range order {
		out = append(out, *group[sig])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return strings.Join(out[i].Schema, ",") < strings.Join(out[j].Schema, ",")
	})
	return out
}
