package keyword

import (
	"math"
	"sort"
	"strings"
	"sync"

	"tablehound/internal/table"
	"tablehound/internal/tokenize"
)

// ValueIndex supports keyword search over cell values — the OCTOPUS
// SEARCH operator (Cafarella et al., VLDB 2009): queries hit the data
// itself rather than metadata, and results come back as clusters of
// same-schema tables ready for union. Add must not run concurrently
// with anything; Search/SearchClusters are safe for concurrent use
// (the lazy Finish on first use is mutex-guarded).
//
// Terms are interned into a dense index-local ID space at Finish, and
// each document stores sorted (term ID, tf) postings: scoring a term
// against a document is a binary search over integers instead of a
// string-map probe, and the per-document string maps are dropped.
type ValueIndex struct {
	docs    []string
	schemas []string // schema signature per doc
	docLen  []float64
	termID  map[string]uint32 // term -> dense ID (index-local vocabulary)
	df      []int             // term ID -> document frequency
	// docTerms/docTF are each document's postings, sorted by term ID.
	docTerms [][]uint32
	docTF    [][]float64
	// pending holds term-frequency maps of documents added since the
	// last Finish (a suffix of docs, in order); finishLocked encodes
	// them and assigns IDs to unseen terms deterministically.
	pending []map[string]float64
	avgLen  float64
	mu      sync.Mutex // guards frozen/avgLen for the lazy Finish
	frozen  bool
}

// NewValueIndex returns an empty value index.
func NewValueIndex() *ValueIndex {
	return &ValueIndex{termID: make(map[string]uint32)}
}

// Add indexes one table's cell values (word tokens, stopwords
// dropped, capped per column to bound skew from huge columns).
func (ix *ValueIndex) Add(t *table.Table) {
	const maxPerColumn = 2000
	tf := make(map[string]float64)
	var l float64
	for _, c := range t.Columns {
		n := 0
		for _, v := range c.Values {
			if n >= maxPerColumn {
				break
			}
			for _, w := range tokenize.Words(v) {
				if tokenize.IsStopword(w) {
					continue
				}
				tf[w]++
				l++
				n++
			}
		}
	}
	ix.docs = append(ix.docs, t.ID)
	ix.schemas = append(ix.schemas, schemaSig(t))
	ix.docLen = append(ix.docLen, l)
	ix.pending = append(ix.pending, tf)
	ix.frozen = false
}

func schemaSig(t *table.Table) string {
	hs := make([]string, 0, t.NumCols())
	for _, h := range t.Header() {
		hs = append(hs, tokenize.Normalize(strings.ReplaceAll(h, "_", " ")))
	}
	sort.Strings(hs)
	return strings.Join(hs, "\x1f")
}

// Finish precomputes corpus statistics; Search calls it implicitly.
func (ix *ValueIndex) Finish() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.finishLocked()
}

func (ix *ValueIndex) finishLocked() {
	// Encode pending documents. New terms get IDs in per-document
	// sorted order, so the vocabulary is a pure function of the add
	// sequence regardless of map iteration order.
	for _, tf := range ix.pending {
		terms := make([]string, 0, len(tf))
		for t := range tf {
			terms = append(terms, t)
		}
		sort.Strings(terms)
		ids := make([]uint32, len(terms))
		for i, t := range terms {
			id, ok := ix.termID[t]
			if !ok {
				id = uint32(len(ix.df))
				ix.termID[t] = id
				ix.df = append(ix.df, 0)
			}
			ix.df[id]++
			ids[i] = id
		}
		// Order postings by term ID (string order above only applies to
		// newly assigned IDs; revisited terms carry older, smaller IDs).
		ord := make([]int, len(terms))
		for i := range ord {
			ord[i] = i
		}
		sort.Slice(ord, func(i, j int) bool { return ids[ord[i]] < ids[ord[j]] })
		sortedIDs := make([]uint32, len(terms))
		sortedTF := make([]float64, len(terms))
		for i, o := range ord {
			sortedIDs[i] = ids[o]
			sortedTF[i] = tf[terms[o]]
		}
		ix.docTerms = append(ix.docTerms, sortedIDs)
		ix.docTF = append(ix.docTF, sortedTF)
	}
	ix.pending = nil
	var sum float64
	for _, l := range ix.docLen {
		sum += l
	}
	if len(ix.docLen) > 0 {
		ix.avgLen = sum / float64(len(ix.docLen))
	}
	ix.frozen = true
}

// ensureFinished runs the lazy Finish exactly when needed, mutex-
// guarded so concurrent Searches stay race-free.
func (ix *ValueIndex) ensureFinished() {
	ix.mu.Lock()
	if !ix.frozen {
		ix.finishLocked()
	}
	ix.mu.Unlock()
}

// Len returns the number of indexed tables.
func (ix *ValueIndex) Len() int { return len(ix.docs) }

// Stats returns the vocabulary size and the total posting count across
// documents (valid after Finish).
func (ix *ValueIndex) Stats() (terms, postings int) {
	terms = len(ix.df)
	for _, ts := range ix.docTerms {
		postings += len(ts)
	}
	return terms, postings
}

func (ix *ValueIndex) idf(df int) float64 {
	n := float64(len(ix.docs))
	d := float64(df)
	return math.Log(1 + (n-d+0.5)/(d+0.5))
}

// tfOf returns the term frequency of a term ID in a document via
// binary search over its sorted postings.
func (ix *ValueIndex) tfOf(doc int, id uint32) float64 {
	ts := ix.docTerms[doc]
	i := sort.Search(len(ts), func(i int) bool { return ts[i] >= id })
	if i < len(ts) && ts[i] == id {
		return ix.docTF[doc][i]
	}
	return 0
}

// Search ranks tables by BM25 over cell values.
func (ix *ValueIndex) Search(query string, k int) []Result {
	ix.ensureFinished()
	terms := queryTerms(query)
	if len(terms) == 0 || k <= 0 {
		return nil
	}
	// Resolve query terms once: unknown terms can never score and are
	// skipped per document exactly as a zero term frequency was. The
	// per-term idf is a pure function of the df, so hoisting it out of
	// the document loop changes no bits.
	qids := make([]uint32, 0, len(terms))
	qidf := make([]float64, 0, len(terms))
	for _, t := range terms {
		if id, ok := ix.termID[t]; ok {
			qids = append(qids, id)
			qidf = append(qidf, ix.idf(ix.df[id]))
		}
	}
	var res []Result
	for d := range ix.docs {
		var score float64
		for i, id := range qids {
			f := ix.tfOf(d, id)
			if f == 0 {
				continue
			}
			norm := f * (bm25K1 + 1) / (f + bm25K1*(1-bm25B+bm25B*ix.docLen[d]/ix.avgLen))
			score += qidf[i] * norm
		}
		if score > 0 {
			res = append(res, Result{TableID: ix.docs[d], Score: score})
		}
	}
	sortResults(res)
	if len(res) > k {
		res = res[:k]
	}
	return res
}

// Cluster is a group of same-schema result tables — OCTOPUS's unit of
// answer, directly unionable into one result table.
type Cluster struct {
	Schema   []string // sorted normalized column names
	TableIDs []string // members, best score first
	Score    float64  // best member score
}

// SearchClusters runs Search and groups the top maxTables hits by
// schema signature, clusters ordered by best member score.
func (ix *ValueIndex) SearchClusters(query string, maxTables int) []Cluster {
	hits := ix.Search(query, maxTables)
	if len(hits) == 0 {
		return nil
	}
	sigOf := make(map[string]string, len(ix.docs))
	for i, id := range ix.docs {
		sigOf[id] = ix.schemas[i]
	}
	group := make(map[string]*Cluster)
	var order []string
	for _, h := range hits {
		sig := sigOf[h.TableID]
		cl, ok := group[sig]
		if !ok {
			cols := strings.Split(sig, "\x1f")
			cl = &Cluster{Schema: cols, Score: h.Score}
			group[sig] = cl
			order = append(order, sig)
		}
		cl.TableIDs = append(cl.TableIDs, h.TableID)
	}
	out := make([]Cluster, 0, len(order))
	for _, sig := range order {
		out = append(out, *group[sig])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return strings.Join(out[i].Schema, ",") < strings.Join(out[j].Schema, ",")
	})
	return out
}
