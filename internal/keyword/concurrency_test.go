package keyword

import (
	"reflect"
	"sync"
	"testing"
)

// TestConcurrentSearchLazyFinish hits Search from many goroutines on
// an index that was never explicitly Finished — the worst case for
// the lazy path. Under -race this proves the mutex-guarded
// ensureFinished keeps concurrent reads safe and consistent.
func TestConcurrentSearchLazyFinish(t *testing.T) {
	ix := NewIndex()
	ix.Add(mkTable("t1", "city population", "population counts", []string{"demo"}, "city", "population"))
	ix.Add(mkTable("t2", "city weather", "weather by city", []string{"climate"}, "city", "temp"))
	ix.Add(mkTable("t3", "bird sightings", "rare birds", []string{"nature"}, "species"))
	// No Finish() on purpose: first Search triggers the lazy path.
	var once sync.Once
	var want []Result
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				got := ix.Search("city population", 3)
				once.Do(func() { want = got })
				if !reflect.DeepEqual(got, want) {
					t.Errorf("concurrent Search diverged: %+v vs %+v", got, want)
					return
				}
				ix.BooleanSearch("city", 3, false)
			}
		}()
	}
	wg.Wait()
}

// TestValueIndexConcurrentSearch mirrors the lazy-Finish race test for
// the cell-value index, including cluster grouping.
func TestValueIndexConcurrentSearch(t *testing.T) {
	ix := NewValueIndex()
	ix.Add(mkTable("t1", "cities", "", nil, "city", "country"))
	ix.Add(mkTable("t2", "towns", "", nil, "city", "country"))
	ix.Add(mkTable("t3", "birds", "", nil, "species"))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				ix.Search("x", 3)
				ix.SearchClusters("x", 3)
			}
		}()
	}
	wg.Wait()
}
