package keyword

import (
	"testing"

	"tablehound/internal/table"
)

func valueTables() []*table.Table {
	mk := func(id string, cols map[string][]string) *table.Table {
		var cs []*table.Column
		// Deterministic column order.
		for _, name := range []string{"city", "mayor", "team", "player"} {
			if vals, ok := cols[name]; ok {
				cs = append(cs, table.NewColumn(name, vals))
			}
		}
		return table.MustNew(id, id, cs)
	}
	return []*table.Table{
		mk("cities1", map[string][]string{
			"city":  {"boston", "cambridge"},
			"mayor": {"wu", "siddiqui"},
		}),
		mk("cities2", map[string][]string{
			"city":  {"boston", "somerville"},
			"mayor": {"wu", "ballantyne"},
		}),
		mk("teams", map[string][]string{
			"team":   {"celtics", "bruins"},
			"player": {"tatum", "pastrnak"},
		}),
	}
}

func TestValueSearchHitsCellContents(t *testing.T) {
	ix := NewValueIndex()
	for _, tbl := range valueTables() {
		ix.Add(tbl)
	}
	ix.Finish()
	res := ix.Search("boston", 5)
	if len(res) != 2 {
		t.Fatalf("results = %v", res)
	}
	for _, r := range res {
		if r.TableID == "teams" {
			t.Error("teams has no boston cell")
		}
	}
	if res := ix.Search("tatum", 5); len(res) != 1 || res[0].TableID != "teams" {
		t.Errorf("tatum results = %v", res)
	}
	if ix.Search("", 5) != nil || ix.Search("boston", 0) != nil {
		t.Error("degenerate queries should return nil")
	}
	if ix.Len() != 3 {
		t.Errorf("Len = %d", ix.Len())
	}
}

func TestSearchClustersGroupBySchema(t *testing.T) {
	ix := NewValueIndex()
	for _, tbl := range valueTables() {
		ix.Add(tbl)
	}
	clusters := ix.SearchClusters("boston wu", 10)
	if len(clusters) != 1 {
		t.Fatalf("clusters = %+v", clusters)
	}
	cl := clusters[0]
	if len(cl.TableIDs) != 2 {
		t.Errorf("cluster members = %v", cl.TableIDs)
	}
	if len(cl.Schema) != 2 || cl.Schema[0] != "city" {
		t.Errorf("cluster schema = %v", cl.Schema)
	}
	// A query matching both schemas yields two clusters, best first.
	clusters = ix.SearchClusters("boston celtics", 10)
	if len(clusters) != 2 {
		t.Fatalf("two-schema clusters = %+v", clusters)
	}
	if clusters[0].Score < clusters[1].Score {
		t.Error("clusters not sorted by score")
	}
	if ix.SearchClusters("zzzz", 10) != nil {
		t.Error("no-hit query should return nil clusters")
	}
}

func TestValueIndexSelfFinish(t *testing.T) {
	ix := NewValueIndex()
	ix.Add(valueTables()[0])
	if res := ix.Search("boston", 1); len(res) != 1 {
		t.Error("search without explicit Finish failed")
	}
}
