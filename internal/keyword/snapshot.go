package keyword

import (
	"fmt"
	"sort"

	"tablehound/internal/snap"
)

// AppendSnapshot encodes the metadata BM25 index. Per-document term
// frequencies are stored in sorted term order (map iteration order
// must never reach the wire); the corpus statistics are finalized
// before encoding so the loaded index is immediately frozen.
func (ix *Index) AppendSnapshot(e *snap.Encoder) {
	ix.ensureFinished()
	e.U32(uint32(len(ix.docs)))
	for d, id := range ix.docs {
		e.Str(id)
		e.F64(ix.docLen[d])
		terms := make([]string, 0, len(ix.termFreq[d]))
		for t := range ix.termFreq[d] {
			terms = append(terms, t)
		}
		sort.Strings(terms)
		e.U32(uint32(len(terms)))
		for _, t := range terms {
			e.Str(t)
			e.F64(ix.termFreq[d][t])
		}
	}
	dfTerms := make([]string, 0, len(ix.df))
	for t := range ix.df {
		dfTerms = append(dfTerms, t)
	}
	sort.Strings(dfTerms)
	e.U32(uint32(len(dfTerms)))
	for _, t := range dfTerms {
		e.Str(t)
		e.U32(uint32(ix.df[t]))
	}
	e.F64(ix.avgLen)
}

// DecodeIndexSnapshot rebuilds a metadata index written by
// AppendSnapshot.
func DecodeIndexSnapshot(d *snap.Decoder) (*Index, error) {
	ix := NewIndex()
	numDocs := int(d.U32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	for i := 0; i < numDocs; i++ {
		id := d.Str()
		dl := d.F64()
		numTerms := int(d.U32())
		if d.Err() != nil {
			return nil, d.Err()
		}
		tf := make(map[string]float64, numTerms)
		for j := 0; j < numTerms; j++ {
			t := d.Str()
			f := d.F64()
			if d.Err() != nil {
				return nil, d.Err()
			}
			tf[t] = f
		}
		if len(tf) != numTerms {
			return nil, fmt.Errorf("%w: duplicate term in document %q", snap.ErrCorrupt, id)
		}
		ix.docs = append(ix.docs, id)
		ix.docLen = append(ix.docLen, dl)
		ix.termFreq = append(ix.termFreq, tf)
	}
	numDF := int(d.U32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	for i := 0; i < numDF; i++ {
		t := d.Str()
		c := d.U32()
		if d.Err() != nil {
			return nil, d.Err()
		}
		ix.df[t] = int(c)
	}
	ix.avgLen = d.F64()
	if d.Err() != nil {
		return nil, d.Err()
	}
	ix.frozen = true
	return ix, nil
}

// AppendSnapshot encodes the cell-value BM25 index: the dense term
// vocabulary in ID order and each document's sorted integer postings.
// Pending documents are finalized first, so the loaded index needs no
// lazy Finish.
func (ix *ValueIndex) AppendSnapshot(e *snap.Encoder) {
	ix.ensureFinished()
	vocab := make([]string, len(ix.df))
	for t, id := range ix.termID {
		vocab[id] = t
	}
	e.Strs(vocab)
	dfs := make([]int32, len(ix.df))
	for i, c := range ix.df {
		dfs[i] = int32(c)
	}
	e.I32s(dfs)
	e.U32(uint32(len(ix.docs)))
	for i, id := range ix.docs {
		e.Str(id)
		e.Str(ix.schemas[i])
		e.F64(ix.docLen[i])
		e.U32s(ix.docTerms[i])
		e.F64s(ix.docTF[i])
	}
	e.F64(ix.avgLen)
}

// DecodeValueIndexSnapshot rebuilds a value index written by
// AppendSnapshot, validating posting shape and term-ID ranges.
func DecodeValueIndexSnapshot(d *snap.Decoder) (*ValueIndex, error) {
	vocab := d.Strs()
	dfs := d.I32s()
	numDocs := int(d.U32())
	if d.Err() != nil {
		return nil, d.Err()
	}
	if len(vocab) != len(dfs) {
		return nil, fmt.Errorf("%w: %d terms vs %d document frequencies", snap.ErrCorrupt, len(vocab), len(dfs))
	}
	ix := NewValueIndex()
	for id, t := range vocab {
		ix.termID[t] = uint32(id)
	}
	if len(ix.termID) != len(vocab) {
		return nil, fmt.Errorf("%w: duplicate term in value-index vocabulary", snap.ErrCorrupt)
	}
	ix.df = make([]int, len(dfs))
	for i, c := range dfs {
		ix.df[i] = int(c)
	}
	for i := 0; i < numDocs; i++ {
		id := d.Str()
		schema := d.Str()
		dl := d.F64()
		terms := d.U32s()
		tfs := d.F64s()
		if d.Err() != nil {
			return nil, d.Err()
		}
		if len(terms) != len(tfs) {
			return nil, fmt.Errorf("%w: document %q has %d terms vs %d frequencies", snap.ErrCorrupt, id, len(terms), len(tfs))
		}
		for j, t := range terms {
			if int(t) >= len(vocab) {
				return nil, fmt.Errorf("%w: document %q term ID %d out of range", snap.ErrCorrupt, id, t)
			}
			if j > 0 && terms[j-1] >= t {
				return nil, fmt.Errorf("%w: document %q postings not sorted", snap.ErrCorrupt, id)
			}
		}
		ix.docs = append(ix.docs, id)
		ix.schemas = append(ix.schemas, schema)
		ix.docLen = append(ix.docLen, dl)
		ix.docTerms = append(ix.docTerms, terms)
		ix.docTF = append(ix.docTF, tfs)
	}
	ix.avgLen = d.F64()
	if d.Err() != nil {
		return nil, d.Err()
	}
	ix.frozen = true
	return ix, nil
}
