package sketch

import (
	"testing"
	"testing/quick"
)

// TestKMVIdempotentProperty: re-adding the same values never changes
// the estimate (the sketch sees sets, not multisets).
func TestKMVIdempotentProperty(t *testing.T) {
	f := func(vals []string) bool {
		a := NewKMV(64)
		for _, v := range vals {
			a.Add(v)
		}
		before := a.Estimate()
		for _, v := range vals {
			a.Add(v)
		}
		return a.Estimate() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestKMVMergeCommutesProperty: merge(a, b) and merge(b, a) estimate
// the same union.
func TestKMVMergeCommutesProperty(t *testing.T) {
	f := func(xs, ys []string) bool {
		a1, b1 := NewKMV(64), NewKMV(64)
		a2, b2 := NewKMV(64), NewKMV(64)
		for _, v := range xs {
			a1.Add(v)
			a2.Add(v)
		}
		for _, v := range ys {
			b1.Add(v)
			b2.Add(v)
		}
		a1.Merge(b1) // a ∪ b
		b2.Merge(a2) // b ∪ a
		return a1.Estimate() == b2.Estimate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQCRTokenCountProperty: token count equals the number of distinct
// non-empty keys, capped by maxSize.
func TestQCRTokenCountProperty(t *testing.T) {
	f := func(keys []string, cap8 uint8) bool {
		vals := make([]float64, len(keys))
		for i := range vals {
			vals[i] = float64(i%7) - 3
		}
		maxSize := int(cap8%32) + 1
		toks := QCRTokens(keys, vals, maxSize)
		distinct := map[string]bool{}
		for _, k := range keys {
			if k != "" {
				distinct[k] = true
			}
		}
		want := len(distinct)
		if want > maxSize {
			want = maxSize
		}
		return len(toks) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestFlipInvolutionProperty: flipping twice restores the tokens.
func TestFlipInvolutionProperty(t *testing.T) {
	f := func(keys []string) bool {
		vals := make([]float64, len(keys))
		for i := range vals {
			vals[i] = float64(i) - float64(len(keys))/2
		}
		toks := QCRTokens(keys, vals, 0)
		back := FlipTokens(FlipTokens(toks))
		if len(back) != len(toks) {
			return false
		}
		for i := range toks {
			if toks[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
