package sketch

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"tablehound/internal/minhash"
)

func keysAndSeries(n int, rho float64, seed int64) (keys []string, x, y []float64) {
	rng := rand.New(rand.NewSource(seed))
	keys = make([]string, n)
	x = make([]float64, n)
	y = make([]float64, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%05d", i)
		x[i] = rng.NormFloat64()
		y[i] = rho*x[i] + rng.NormFloat64()*math.Sqrt(1-rho*rho)
	}
	return
}

func TestQCRCorrelatedColumnsShareTokens(t *testing.T) {
	keys, x, y := keysAndSeries(1000, 0.95, 1)
	_, _, z := keysAndSeries(1000, 0, 2)
	tx := QCRTokens(keys, x, 0)
	ty := QCRTokens(keys, y, 0)
	tz := QCRTokens(keys, z, 0)
	corrOverlap := minhash.ExactOverlap(tx, ty)
	randOverlap := minhash.ExactOverlap(tx, tz)
	// Highly correlated: tokens agree on most keys (~ (1+rho')/2).
	if corrOverlap < 800 {
		t.Errorf("correlated overlap = %d of 1000, want high", corrOverlap)
	}
	// Uncorrelated: ~50% agreement by chance.
	if randOverlap < 350 || randOverlap > 650 {
		t.Errorf("uncorrelated overlap = %d, want near 500", randOverlap)
	}
	if corrOverlap <= randOverlap {
		t.Error("correlated pair should share more tokens")
	}
}

func TestQCRAnticorrelationViaFlip(t *testing.T) {
	keys, x, y := keysAndSeries(1000, -0.95, 3)
	tx := QCRTokens(keys, x, 0)
	ty := QCRTokens(keys, y, 0)
	direct := minhash.ExactOverlap(tx, ty)
	flipped := minhash.ExactOverlap(FlipTokens(tx), ty)
	if flipped <= direct {
		t.Errorf("flipped overlap %d should exceed direct %d for anticorrelated", flipped, direct)
	}
	if flipped < 800 {
		t.Errorf("flipped overlap = %d, want high", flipped)
	}
}

func TestQCRMaxSizeSubsamples(t *testing.T) {
	keys, x, _ := keysAndSeries(1000, 0.9, 4)
	tk := QCRTokens(keys, x, 64)
	if len(tk) != 64 {
		t.Errorf("sketch size = %d, want 64", len(tk))
	}
	// Subsampling is by hash order: same keys chosen for any column,
	// so two correlated columns' subsamples still align.
	_, _, y := keysAndSeries(1000, 0.9, 4)
	ty := QCRTokens(keys, y, 64)
	ov := minhash.ExactOverlap(tk, ty)
	if ov < 40 {
		t.Errorf("subsampled correlated overlap = %d of 64", ov)
	}
}

func TestQCRHandlesDuplicatesAndEmpties(t *testing.T) {
	keys := []string{"a", "a", "", "b"}
	vals := []float64{1, 99, 5, 2}
	tk := QCRTokens(keys, vals, 0)
	if len(tk) != 2 {
		t.Errorf("tokens = %v, want 2 (dedup + drop empty)", tk)
	}
	if QCRTokens(nil, nil, 0) != nil {
		t.Error("empty input should yield nil")
	}
}

func TestFlipTokens(t *testing.T) {
	in := []string{"ab:+", "cd:-", ""}
	out := FlipTokens(in)
	if out[0] != "ab:-" || out[1] != "cd:+" || out[2] != "" {
		t.Errorf("FlipTokens = %v", out)
	}
}

func TestKMVExactBelowK(t *testing.T) {
	s := NewKMV(64)
	for i := 0; i < 30; i++ {
		s.Add(fmt.Sprintf("v%d", i))
	}
	// Duplicates must not inflate.
	for i := 0; i < 30; i++ {
		s.Add(fmt.Sprintf("v%d", i))
	}
	if est := s.Estimate(); est != 30 {
		t.Errorf("Estimate = %v, want exactly 30", est)
	}
}

func TestKMVEstimateAccuracy(t *testing.T) {
	for _, n := range []int{1000, 10000} {
		s := NewKMV(256)
		for i := 0; i < n; i++ {
			s.Add(fmt.Sprintf("value-%d", i))
		}
		est := s.Estimate()
		if math.Abs(est-float64(n))/float64(n) > 0.2 {
			t.Errorf("n=%d: Estimate = %.0f (err %.1f%%)", n, est, 100*math.Abs(est-float64(n))/float64(n))
		}
	}
}

func TestKMVMerge(t *testing.T) {
	a := NewKMV(256)
	b := NewKMV(256)
	for i := 0; i < 3000; i++ {
		a.Add(fmt.Sprintf("a%d", i))
		b.Add(fmt.Sprintf("b%d", i))
	}
	// Shared values.
	for i := 0; i < 1000; i++ {
		a.Add(fmt.Sprintf("c%d", i))
		b.Add(fmt.Sprintf("c%d", i))
	}
	a.Merge(b)
	est := a.Estimate()
	if math.Abs(est-7000)/7000 > 0.2 {
		t.Errorf("union estimate = %.0f, want ~7000", est)
	}
}

func TestKMVPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	NewKMV(0)
}
