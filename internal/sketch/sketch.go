// Package sketch implements the sketches used for correlated-dataset
// search (Santos, Bessa, Musco, Freire — ICDE 2022): QCR (Quadrant
// Count Ratio) keys that reduce "find columns correlated with mine
// after joining on a key" to set-overlap search, plus KMV sketches for
// distinct-count estimation.
//
// For a keyed numeric column {(k_i, v_i)}, each key emits the token
// "h(k_i):+" if v_i is above the column median and "h(k_i):-"
// otherwise. Two columns that join on many keys and are positively
// correlated share many identical tokens; anticorrelated columns share
// many sign-flipped tokens. Overlap search over QCR tokens therefore
// ranks correlation candidates without touching the raw data.
package sketch

import (
	"fmt"
	"sort"

	"tablehound/internal/minhash"
)

// QCRTokens produces the QCR token set of a keyed numeric column.
// keys and vals are parallel; pairs with duplicate keys keep the first
// occurrence. maxSize > 0 subsamples keys by hash order (a KMV-style
// bottom-k sample), bounding sketch size as the paper does.
func QCRTokens(keys []string, vals []float64, maxSize int) []string {
	n := len(keys)
	if len(vals) < n {
		n = len(vals)
	}
	type kv struct {
		key  string
		val  float64
		hash uint64
	}
	seen := make(map[string]bool, n)
	pairs := make([]kv, 0, n)
	for i := 0; i < n; i++ {
		if keys[i] == "" || seen[keys[i]] {
			continue
		}
		seen[keys[i]] = true
		pairs = append(pairs, kv{keys[i], vals[i], minhash.HashValue(keys[i])})
	}
	if len(pairs) == 0 {
		return nil
	}
	vs := make([]float64, len(pairs))
	for i, p := range pairs {
		vs[i] = p.val
	}
	med := median(vs)
	if maxSize > 0 && len(pairs) > maxSize {
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].hash < pairs[j].hash })
		pairs = pairs[:maxSize]
	}
	out := make([]string, 0, len(pairs))
	for _, p := range pairs {
		sign := "-"
		if p.val > med {
			sign = "+"
		}
		out = append(out, fmt.Sprintf("%016x:%s", p.hash, sign))
	}
	return out
}

// FlipTokens returns the tokens with signs inverted, used to search
// for anticorrelated columns.
func FlipTokens(tokens []string) []string {
	out := make([]string, len(tokens))
	for i, t := range tokens {
		n := len(t)
		if n == 0 {
			continue
		}
		switch t[n-1] {
		case '+':
			out[i] = t[:n-1] + "-"
		case '-':
			out[i] = t[:n-1] + "+"
		default:
			out[i] = t
		}
	}
	return out
}

// median returns the median of vs, sorting it in place.
func median(vs []float64) float64 {
	sort.Float64s(vs)
	n := len(vs)
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

// KMV is a k-minimum-values sketch estimating the number of distinct
// values in a stream. The zero value is unusable; construct with
// NewKMV.
type KMV struct {
	k      int
	hashes []uint64 // max-heap of the k smallest hashes seen
	seen   map[uint64]bool
}

// NewKMV creates a sketch keeping the k smallest hashes.
func NewKMV(k int) *KMV {
	if k <= 0 {
		panic(fmt.Sprintf("sketch: KMV k must be positive, got %d", k))
	}
	return &KMV{k: k, seen: make(map[uint64]bool, k*2)}
}

// Add folds a value into the sketch.
func (s *KMV) Add(value string) { s.AddHash(minhash.HashValue(value)) }

// AddHash folds a pre-hashed value into the sketch.
func (s *KMV) AddHash(h uint64) {
	if s.seen[h] {
		return
	}
	if len(s.hashes) < s.k {
		s.seen[h] = true
		s.push(h)
		return
	}
	if h >= s.hashes[0] {
		return
	}
	delete(s.seen, s.hashes[0])
	s.seen[h] = true
	s.hashes[0] = h
	s.siftDown(0)
}

func (s *KMV) push(h uint64) {
	s.hashes = append(s.hashes, h)
	i := len(s.hashes) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s.hashes[p] >= s.hashes[i] {
			break
		}
		s.hashes[p], s.hashes[i] = s.hashes[i], s.hashes[p]
		i = p
	}
}

func (s *KMV) siftDown(i int) {
	n := len(s.hashes)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && s.hashes[l] > s.hashes[big] {
			big = l
		}
		if r < n && s.hashes[r] > s.hashes[big] {
			big = r
		}
		if big == i {
			return
		}
		s.hashes[i], s.hashes[big] = s.hashes[big], s.hashes[i]
		i = big
	}
}

// Estimate returns the estimated distinct count: (k-1) / U(k-th min)
// where U maps the hash into (0, 1). Streams with fewer than k
// distinct values are counted exactly.
func (s *KMV) Estimate() float64 {
	n := len(s.hashes)
	if n < s.k {
		return float64(n)
	}
	kth := s.hashes[0] // max of the k minima
	u := (float64(kth) + 1) / float64(1<<63) / 2
	if u == 0 {
		return float64(n)
	}
	return float64(s.k-1) / u
}

// Merge folds another sketch into s; the result estimates the distinct
// count of the union. Both sketches must share the same k.
func (s *KMV) Merge(o *KMV) {
	for _, h := range o.hashes {
		s.AddHash(h)
	}
}
